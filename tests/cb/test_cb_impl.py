"""Execution tests for CB-IMPL: view-scoped invariants and traces."""

import pytest

from repro.core import make_view
from repro.checking import (
    build_closed_cb_impl,
    check_cb_trace_properties,
    random_view_pool,
)
from repro.ioa import run_random
from repro.cb import cb_impl_invariants
from repro.cb.impl import CbImplState, build_cb_impl

WEIGHTS = {"dvs_createview": 0.05, "dvs_newview": 0.5, "cbcast": 1.0}


class TestInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_under_view_churn(self, seed):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 4, seed=seed + 100, min_size=2)
        system, procs = build_closed_cb_impl(
            v0, universe, view_pool=pool, budget=3
        )
        ex = run_random(system, 4000, seed=seed, weights=WEIGHTS)
        cb_impl_invariants(procs).check_execution(ex)

    @pytest.mark.parametrize("seed", range(3))
    def test_larger_universe(self, seed):
        universe = ["p1", "p2", "p3", "p4"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 3, seed=seed + 9, min_size=3)
        system, procs = build_closed_cb_impl(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(system, 5000, seed=seed, weights=WEIGHTS)
        cb_impl_invariants(procs).check_execution(ex)


class TestStableCase:
    def test_quiet_network_delivers_everything_causally(self):
        """With no view changes the full causal checker applies and
        every broadcast is delivered to every member."""
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_cb_impl(v0, universe, budget=2)
        ex = run_random(system, 6000, seed=1, weights=WEIGHTS)
        cb_impl_invariants(procs).check_execution(ex)
        stats = check_cb_trace_properties(ex.trace())
        assert stats["broadcasts"] == 6
        assert stats["deliveries"] == 6 * 3

    def test_trace_properties_hold_under_churn_per_view(self):
        """Across view changes the external trace is only best-effort,
        but the view-scoped invariants (incl. per-sender prefix
        consistency on the history variable) must still hold."""
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 5, seed=77, min_size=2)
        system, procs = build_closed_cb_impl(
            v0, universe, view_pool=pool, budget=3
        )
        ex = run_random(system, 8000, seed=3, weights=WEIGHTS)
        cb_impl_invariants(procs).check_execution(ex)


class TestImplState:
    def test_named_access(self):
        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        impl = build_cb_impl(v0, universe)
        state = CbImplState(impl.initial_state(), universe)
        assert state.app("p1").current == v0
        assert state.app("p1").delivered == ()
        assert state.dvs is not None
