"""Tests for the runtime CB layer and the DVS fanout over the
simulated stack."""

from repro.cb.messages import CbCast
from repro.checking import check_cb_trace_properties
from repro.core import make_view
from repro.gcs import CbLayer, DvsFanout
from repro.gcs.cluster import Cluster


class _Sink:
    def __init__(self):
        self.got = []

    def on_cb_brcv(self, payload, origin):
        self.got.append((payload, origin))


class TestCbLayerOverSimCluster:
    def test_causal_delivery_stable_group(self):
        c = Cluster(list("abc"), seed=11).start()
        c.settle(max_time=60)
        for i in range(3):
            for pid in "abc":
                c.bcast(pid, ("c", pid, i), ordering="cb")
        c.settle(max_time=400)
        for pid in "abc":
            assert len(c.cb_delivered(pid)) == 9
        stats = check_cb_trace_properties(_payload_trace(c))
        assert stats["broadcasts"] == 9
        assert stats["deliveries"] == 27

    def test_per_sender_fifo_observed_everywhere(self):
        c = Cluster(list("abc"), seed=12).start()
        c.settle(max_time=60)
        for i in range(4):
            c.bcast("a", ("c", "a", i), ordering="cb")
        c.settle(max_time=400)
        for pid in "abc":
            from_a = [p for p, q in c.cb_delivered(pid) if q == "a"]
            assert from_a == [("c", "a", i) for i in range(4)]

    def test_pre_view_sends_are_delayed_not_lost(self):
        v0 = make_view(0, ["a", "b"])
        c = Cluster(["a", "b", "j"], initial_view=v0, seed=13).start()
        # "j" is outside the initial view: its layer has no current
        # view, so a cbcast waits in the delay queue.
        c.cb["j"].cbcast(("c", "j", 0))
        assert c.cb["j"].delay == [("c", "j", 0)]
        c.settle(max_time=600)
        if c.cb["j"].current is not None:  # joined: the send went out
            assert c.cb["j"].delay == []

    def test_both_tiers_share_one_dvs(self):
        c = Cluster(list("abc"), seed=14).start()
        c.settle(max_time=60)
        c.bcast("a", ("t", "a", 0), ordering="to")
        c.bcast("a", ("c", "a", 0), ordering="cb")
        c.settle(max_time=400)
        for pid in "abc":
            assert c.delivered(pid) == [(("t", "a", 0), "a")]
            assert c.cb_delivered(pid) == [(("c", "a", 0), "a")]


def _payload_trace(c):
    """cb_brcv actions re-shaped for the payload-level trace checker."""
    from repro.ioa import act

    trace = []
    for a in c.log.actions:
        if a.name == "cbcast":
            trace.append(a)
        elif a.name == "cb_brcv":
            msg, origin, pid = a.params
            trace.append(act("cb_brcv", msg.payload, origin, pid))
    return trace


class TestFanout:
    def _fixture(self):
        class FakeDvs:
            def __init__(self):
                self.pid = "p1"
                self.listener = None
                self.sent = []
                self.registers = 0

            def gpsnd(self, payload):
                self.sent.append(payload)

            def register(self):
                self.registers += 1

        return FakeDvs()

    def test_routing_by_claimed_type(self):
        dvs = self._fixture()
        fanout = DvsFanout(dvs)
        default_port = fanout.port()
        cb_port = fanout.port(claims=CbCast)
        default_port.listener = _Recorder()
        cb_port.listener = _Recorder()
        cast = CbCast(make_view(0, ["p1"]).id, (("p1", 1),), "x", "p1")
        fanout.on_dvs_gprcv(cast, "p1")
        fanout.on_dvs_gprcv(("to", "payload"), "p1")
        assert cb_port.listener.gprcv == [(cast, "p1")]
        assert default_port.listener.gprcv == [(("to", "payload"), "p1")]

    def test_safe_routed_like_gprcv(self):
        dvs = self._fixture()
        fanout = DvsFanout(dvs)
        default_port = fanout.port()
        cb_port = fanout.port(claims=CbCast)
        default_port.listener = _Recorder()
        cb_port.listener = _Recorder()
        fanout.on_dvs_safe(("to", "payload"), "p2")
        assert default_port.listener.safe == [(("to", "payload"), "p2")]
        assert cb_port.listener.safe == []

    def test_register_waits_for_every_port(self):
        dvs = self._fixture()
        fanout = DvsFanout(dvs)
        port_a = fanout.port()
        port_b = fanout.port(claims=CbCast)
        port_b.register()
        assert dvs.registers == 0  # the TO tower has not registered yet
        port_a.register()
        assert dvs.registers == 1

    def test_newview_resets_registration_flags(self):
        dvs = self._fixture()
        fanout = DvsFanout(dvs)
        port_a = fanout.port()
        port_b = fanout.port(claims=CbCast)
        port_a.listener = _Recorder()
        port_b.listener = _Recorder()
        port_a.register()
        port_b.register()
        assert dvs.registers == 1
        view = make_view(1, ["p1"])
        fanout.on_dvs_newview(view)
        assert not port_a.registered and not port_b.registered
        assert port_a.listener.views == [view]
        assert port_b.listener.views == [view]
        # Registering both again registers the new view exactly once.
        port_b.register()
        port_a.register()
        assert dvs.registers == 2

    def test_cb_layer_over_a_port_registers_on_newview(self):
        dvs = self._fixture()
        fanout = DvsFanout(dvs)
        to_port = fanout.port()
        v0 = make_view(0, ["p1"])
        cb = CbLayer(fanout.port(claims=CbCast), v0, listener=_Sink())
        fanout.on_dvs_newview(make_view(1, ["p1"]))
        # CB registered immediately; DVS still waits for the TO port.
        assert dvs.registers == 0
        to_port.register()
        assert dvs.registers == 1
        assert cb.current.id == make_view(1, ["p1"]).id


class _Recorder:
    """A listener that just logs upcalls."""

    def __init__(self):
        self.views = []
        self.gprcv = []
        self.safe = []

    def on_dvs_newview(self, view):
        self.views.append(view)

    def on_dvs_gprcv(self, payload, sender):
        self.gprcv.append((payload, sender))

    def on_dvs_safe(self, payload, sender):
        self.safe.append((payload, sender))
