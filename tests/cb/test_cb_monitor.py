"""The safety monitor's CB checks: clean runs pass, fabricated
violations of each property are caught."""

import pytest

from repro.cb.messages import CbCast
from repro.core import make_view
from repro.faults.monitor import SafetyMonitor, SafetyViolation
from repro.gcs.recorder import ActionLog


def make_monitor(members="abc", fail_fast=True):
    v0 = make_view(0, members)
    log = ActionLog()
    monitor = SafetyMonitor(v0, fail_fast=fail_fast).attach(log)
    return monitor, log, v0


def cast(view, clock, payload, origin):
    return CbCast(view.id, tuple(clock), payload, origin)


class TestCleanRuns:
    def test_causal_exchange_passes(self):
        monitor, log, v0 = make_monitor()
        m1 = cast(v0, [("a", 1)], "x", "a")
        log.record("cbcast", "x", "a")
        for p in "abc":
            log.record("cb_brcv", m1, "a", p)
        # b casts after delivering a's: clock carries the dependency.
        m2 = cast(v0, [("a", 1), ("b", 1)], "y", "b")
        log.record("cbcast", "y", "b")
        for p in "abc":
            log.record("cb_brcv", m2, "b", p)
        assert monitor.ok
        stats = monitor.stats()
        assert stats["cb_broadcasts"] == 2
        assert stats["cb_deliveries"] == 6

    def test_counts_reset_per_view(self):
        monitor, log, v0 = make_monitor()
        v1 = make_view(1, "abc")
        log.record("cbcast", "x", "a")
        log.record("cb_brcv", cast(v0, [("a", 1)], "x", "a"), "a", "b")
        for p in "abc":
            log.record("dvs_newview", v1, p)
        # Seqno 1 from a again -- legal, it is a fresh view's clock.
        log.record("cbcast", "z", "a")
        log.record("cb_brcv", cast(v1, [("a", 1)], "z", "a"), "a", "b")
        assert monitor.ok


class TestViolations:
    def test_unbroadcast_delivery_is_cb_integrity(self):
        monitor, log, v0 = make_monitor()
        with pytest.raises(SafetyViolation) as err:
            log.record(
                "cb_brcv", cast(v0, [("a", 1)], "ghost", "a"), "a", "b"
            )
        assert err.value.prop == "cb-integrity"

    def test_misattributed_delivery_is_cb_integrity(self):
        monitor, log, v0 = make_monitor(fail_fast=False)
        log.record("cbcast", "x", "a")
        log.record("cb_brcv", cast(v0, [("a", 1)], "x", "a"), "b", "b")
        assert any(
            v.prop == "cb-integrity" for v in monitor.violations
        )

    def test_skipped_seqno_is_cb_gap_free(self):
        monitor, log, v0 = make_monitor()
        log.record("cbcast", "x", "a")
        log.record("cbcast", "y", "a")
        with pytest.raises(SafetyViolation) as err:
            # Seqno 2 delivered before seqno 1.
            log.record(
                "cb_brcv", cast(v0, [("a", 2)], "y", "a"), "a", "b"
            )
        assert err.value.prop == "cb-gap-free"

    def test_duplicate_delivery_is_cb_gap_free(self):
        monitor, log, v0 = make_monitor()
        log.record("cbcast", "x", "a")
        m = cast(v0, [("a", 1)], "x", "a")
        log.record("cb_brcv", m, "a", "b")
        with pytest.raises(SafetyViolation) as err:
            log.record("cb_brcv", m, "a", "b")
        assert err.value.prop == "cb-gap-free"

    def test_missing_causal_predecessor_is_cb_causal_order(self):
        monitor, log, v0 = make_monitor()
        log.record("cbcast", "x", "a")
        log.record("cbcast", "y", "b")
        with pytest.raises(SafetyViolation) as err:
            # b's cast claims a's first cast in its past, but "b" (the
            # receiver here) never delivered it.
            log.record(
                "cb_brcv", cast(v0, [("a", 1), ("b", 1)], "y", "b"),
                "b", "c"
            )
        assert err.value.prop == "cb-causal-order"

    def test_diverging_slot_content_is_cb_content_consistency(self):
        monitor, log, v0 = make_monitor()
        log.record("cbcast", "x", "a")
        log.record("cbcast", "x2", "a")
        log.record("cb_brcv", cast(v0, [("a", 1)], "x", "a"), "a", "b")
        with pytest.raises(SafetyViolation) as err:
            # Same view/sender/seqno slot, different payload elsewhere.
            log.record(
                "cb_brcv", cast(v0, [("a", 1)], "x2", "a"), "a", "c"
            )
        assert err.value.prop == "cb-content-consistency"

    def test_restart_forgets_the_processes_counts(self):
        monitor, log, v0 = make_monitor(fail_fast=False)
        log.record("cbcast", "x", "a")
        log.record("cb_brcv", cast(v0, [("a", 1)], "x", "a"), "a", "b")
        monitor.restart_process("b")
        # After an amnesiac restart b may legally re-deliver seqno 1.
        log.record("cb_brcv", cast(v0, [("a", 1)], "x", "a"), "a", "b")
        assert monitor.ok
