"""Unit tests for composition and hiding."""

import pytest

from repro.ioa import Composition, CompositionError, Kind, act

from tests.ioa.helpers import Counter, TickListener


def make_system(hidden=()):
    return Composition(
        [Counter(limit=5), TickListener(threshold=2)], hidden=hidden
    )


class TestSignature:
    def test_output_wins_over_input(self):
        system = make_system()
        assert system.action_kind(act("tick")) is Kind.OUTPUT
        assert system.action_kind(act("reset")) is Kind.OUTPUT

    def test_hidden_reclassified(self):
        system = make_system(hidden={"tick"})
        assert system.action_kind(act("tick")) is Kind.INTERNAL
        assert "tick" not in system.outputs
        assert "tick" in system.internals

    def test_unknown_action(self):
        assert make_system().action_kind(act("zap")) is None

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(CompositionError):
            Composition([Counter(), Counter()])

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(CompositionError):
            Composition([Counter(name="c1"), Counter(name="c2")])


class TestSynchronization:
    def test_shared_action_updates_both(self):
        system = make_system()
        s = system.initial_state()
        s = system.apply(s, act("tick"))
        assert s.part("counter").count == 1
        assert s.part("listener").heard == 1

    def test_reset_round_trip(self):
        system = make_system()
        s = system.initial_state()
        s = system.apply(s, act("tick"))
        s = system.apply(s, act("tick"))
        assert act("reset") in system.enabled_controlled(s)
        s = system.apply(s, act("reset"))
        assert s.part("counter").count == 0
        assert s.part("listener").heard == 0

    def test_owner_precondition_gates_composition(self):
        system = make_system()
        s = system.initial_state()
        assert not system.is_enabled(s, act("reset"))

    def test_enabled_controlled_union(self):
        system = make_system()
        s = system.initial_state()
        assert system.enabled_controlled(s) == [act("tick")]

    def test_getitem_access(self):
        system = make_system()
        s = system.initial_state()
        assert s["counter"].count == 0


class TestTraces:
    def test_hidden_actions_not_in_trace(self):
        from repro.ioa import Execution

        system = make_system(hidden={"tick"})
        ex = Execution(system, system.initial_state())
        ex.extend(act("tick"))
        ex.extend(act("tick"))
        ex.extend(act("reset"))
        assert ex.trace() == [act("reset")]
        assert len(ex.actions()) == 3
