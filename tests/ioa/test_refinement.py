"""Unit tests for the refinement checker, on a toy spec/impl pair."""

import pytest

from repro.ioa import (
    Composition,
    Execution,
    RefinementChecker,
    RefinementFailure,
    State,
    TransitionAutomaton,
    act,
    run_random,
)


class SpecCounter(TransitionAutomaton):
    """Spec: may emit ``tick`` forever; counts them."""

    name = "spec_counter"
    outputs = frozenset({"tick"})

    def initial_state(self):
        return State(count=0)

    def eff_tick(self, state):
        state.count += 1

    def cand_tick(self, state):
        yield act("tick")


class ImplCounter(TransitionAutomaton):
    """Impl: must ``prepare`` (internal) before each ``tick``."""

    name = "impl_counter"
    outputs = frozenset({"tick"})
    internals = frozenset({"prepare"})

    def initial_state(self):
        return State(done=0, ready=False)

    def pre_prepare(self, state):
        return not state.ready

    def eff_prepare(self, state):
        state.ready = True

    def cand_prepare(self, state):
        if not state.ready:
            yield act("prepare")

    def pre_tick(self, state):
        return state.ready

    def eff_tick(self, state):
        state.done += 1
        state.ready = False

    def cand_tick(self, state):
        if state.ready:
            yield act("tick")


class BrokenImplCounter(ImplCounter):
    """Emits two abstract ticks' worth of state per concrete tick."""

    name = "broken_impl"

    def eff_tick(self, state):
        state.done += 2
        state.ready = False


def mapping(impl_state):
    return State(count=impl_state.done)


def run_impl(impl, steps=20):
    system = Composition([impl])
    return run_random(system, steps, seed=0)


class TestRefinementChecker:
    def _checker(self, hints=None):
        return RefinementChecker(
            impl=Composition([ImplCounter()]),
            spec=SpecCounter(),
            mapping=lambda s: mapping(s.part("impl_counter")),
            hints=hints,
            max_depth=2,
        )

    def test_initial_state_condition(self):
        checker = self._checker()
        checker.check_initial()

    def test_initial_state_failure_detected(self):
        checker = RefinementChecker(
            impl=Composition([ImplCounter()]),
            spec=SpecCounter(),
            mapping=lambda s: State(count=99),
        )
        with pytest.raises(RefinementFailure):
            checker.check_initial()

    def test_execution_passes_without_hints(self):
        checker = self._checker()
        ex = run_impl(Composition([ImplCounter()]).components[0])
        ex = run_random(Composition([ImplCounter()]), 20, seed=0)
        total = checker.check_execution(ex)
        ticks = sum(1 for a in ex.actions() if a.name == "tick")
        assert total == ticks  # prepares map to stutters

    def test_execution_passes_with_hints(self):
        def hints(step, abstract_from):
            if step.action.name == "tick":
                return [[step.action]]
            return [[]]

        checker = self._checker(hints=hints)
        ex = run_random(Composition([ImplCounter()]), 20, seed=1)
        checker.check_execution(ex)

    def test_broken_impl_detected(self):
        checker = RefinementChecker(
            impl=Composition([BrokenImplCounter()]),
            spec=SpecCounter(),
            mapping=lambda s: mapping(s.part("broken_impl")),
            max_depth=1,
        )
        ex = run_random(Composition([BrokenImplCounter()]), 4, seed=0)
        with pytest.raises(RefinementFailure):
            checker.check_execution(ex)

    def test_broken_impl_found_even_with_bigger_depth(self):
        # Depth 2 *could* fake the double-tick with two abstract ticks,
        # but the trace must then contain two ticks while the concrete
        # trace has one -- still a failure.
        checker = RefinementChecker(
            impl=Composition([BrokenImplCounter()]),
            spec=SpecCounter(),
            mapping=lambda s: mapping(s.part("broken_impl")),
            max_depth=3,
        )
        ex = run_random(Composition([BrokenImplCounter()]), 4, seed=0)
        with pytest.raises(RefinementFailure):
            checker.check_execution(ex)

    def test_fragments_reported(self):
        checker = self._checker()
        ex = run_random(Composition([ImplCounter()]), 10, seed=0)
        fragments = []
        checker.check_execution(
            ex, on_step=lambda step, frag: fragments.append((step.action.name, frag))
        )
        for name, frag in fragments:
            if name == "tick":
                assert frag == [act("tick")]
            else:
                assert frag == []
