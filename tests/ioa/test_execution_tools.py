"""Unit tests for executions, schedulers, invariants and the explorer."""

import pytest

from repro.ioa import (
    BoundedExplorer,
    Composition,
    Execution,
    InvariantSuite,
    InvariantViolation,
    RandomScheduler,
    act,
    run_random,
)

from tests.ioa.helpers import Counter, TickListener


def make_system():
    return Composition([Counter(limit=5), TickListener(threshold=2)])


class TestExecution:
    def test_extend_chains_states(self):
        system = make_system()
        ex = Execution(system, system.initial_state())
        step = ex.extend(act("tick"))
        assert step.state is ex.initial_state
        assert ex.final_state is step.next_state
        assert len(ex) == 1

    def test_states_iteration(self):
        system = make_system()
        ex = Execution(system, system.initial_state())
        ex.extend(act("tick"))
        ex.extend(act("tick"))
        assert len(list(ex.states())) == 3

    def test_project_trace(self):
        system = make_system()
        ex = Execution(system, system.initial_state())
        ex.extend(act("tick"))
        ex.extend(act("tick"))
        ex.extend(act("reset"))
        assert ex.project_trace({"reset"}) == [act("reset")]


class TestScheduler:
    def test_deterministic_given_seed(self):
        a = run_random(make_system(), 50, seed=4).actions()
        b = run_random(make_system(), 50, seed=4).actions()
        assert a == b

    def test_different_seeds_can_differ(self):
        runs = {
            tuple(run_random(make_system(), 30, seed=s).actions())
            for s in range(8)
        }
        assert len(runs) > 1

    def test_quiescence_stops_run(self):
        lonely = Composition([Counter(limit=2)])
        ex = run_random(lonely, 100, seed=0)
        assert len(ex) == 2  # two ticks then nothing enabled

    def test_weights_bias_choice(self):
        # With reset weight ~0, the counter saturates at its limit.
        ex = run_random(
            make_system(), 200, seed=1, weights={"reset": 1e-9}
        )
        resets = sum(1 for a in ex.actions() if a.name == "reset")
        ticks = sum(1 for a in ex.actions() if a.name == "tick")
        assert ticks > resets

    def test_on_step_callback(self):
        seen = []
        run_random(make_system(), 10, seed=0, on_step=lambda s: seen.append(s))
        assert len(seen) == 10

    def test_choose_singleton_needs_no_rng(self):
        sched = RandomScheduler()
        assert sched.choose([act("x")]) == act("x")


class TestInvariants:
    def test_suite_passes(self):
        system = make_system()
        ex = run_random(system, 40, seed=2)
        suite = InvariantSuite(
            {"count bounded": lambda s: s.part("counter").count <= 5}
        )
        assert suite.check_execution(ex) == len(ex) + 1

    def test_suite_raises_with_name(self):
        suite = InvariantSuite({"always false": lambda s: False})
        system = make_system()
        with pytest.raises(InvariantViolation) as excinfo:
            suite.check_state(system.initial_state())
        assert "always false" in str(excinfo.value)

    def test_assertion_message_propagates(self):
        def pred(state):
            assert False, "the details"

        suite = InvariantSuite({"explained": pred})
        with pytest.raises(InvariantViolation) as excinfo:
            suite.check_state(make_system().initial_state())
        assert "the details" in str(excinfo.value)

    def test_violations_listing(self):
        suite = InvariantSuite(
            {"ok": lambda s: True, "bad": lambda s: False}
        )
        assert suite.violations(make_system().initial_state()) == ["bad"]


class TestBoundedExplorer:
    def test_explores_full_space(self):
        system = make_system()
        result = BoundedExplorer(system).explore()
        assert result.complete
        # Counter 0..5 x heard 0..5, reachable subset; just sanity-check
        # that exploration saw both action types and a nontrivial space.
        assert result.states_visited > 5
        assert set(result.action_counts) == {"tick", "reset"}

    def test_invariant_checked_everywhere(self):
        system = make_system()
        suite = InvariantSuite(
            {"count bounded": lambda s: s.part("counter").count <= 5}
        )
        result = BoundedExplorer(system, invariants=suite).explore()
        assert result.violation is None

    def test_counterexample_path_recorded(self):
        system = make_system()
        suite = InvariantSuite(
            {"never three": lambda s: s.part("counter").count != 3}
        )
        result = BoundedExplorer(system, invariants=suite).explore()
        assert result.violation is not None
        assert [a.name for a in result.counterexample] == ["tick"] * 3

    def test_raises_when_asked(self):
        system = make_system()
        suite = InvariantSuite({"no": lambda s: s.part("counter").count == 0})
        explorer = BoundedExplorer(
            system, invariants=suite, stop_on_violation=False
        )
        with pytest.raises(InvariantViolation):
            explorer.explore()

    def test_max_states_truncates(self):
        system = make_system()
        result = BoundedExplorer(system, max_states=3).explore()
        assert not result.complete
        assert result.states_visited == 3

    def test_max_depth_truncates(self):
        system = make_system()
        result = BoundedExplorer(system, max_depth=1).explore()
        assert not result.complete
        assert result.max_depth_reached <= 1

    def test_summary_string(self):
        result = BoundedExplorer(make_system()).explore()
        assert "complete" in result.summary()
