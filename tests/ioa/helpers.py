"""Tiny toy automata used to exercise the IOA framework."""

from repro.ioa import State, TransitionAutomaton, act


class Counter(TransitionAutomaton):
    """Counts ``tick`` outputs up to a limit; accepts ``reset`` inputs."""

    name = "counter"
    inputs = frozenset({"reset"})
    outputs = frozenset({"tick"})

    def __init__(self, limit=3, name="counter"):
        self.limit = limit
        self.name = name

    def initial_state(self):
        return State(count=0)

    def pre_tick(self, state):
        return state.count < self.limit

    def eff_tick(self, state):
        state.count += 1

    def cand_tick(self, state):
        if state.count < self.limit:
            yield act("tick")

    def eff_reset(self, state):
        state.count = 0


class TickListener(TransitionAutomaton):
    """Hears ``tick``; emits ``reset`` after hearing ``threshold`` ticks."""

    name = "listener"
    inputs = frozenset({"tick"})
    outputs = frozenset({"reset"})

    def __init__(self, threshold=2, name="listener"):
        self.threshold = threshold
        self.name = name

    def initial_state(self):
        return State(heard=0)

    def eff_tick(self, state):
        state.heard += 1

    def pre_reset(self, state):
        return state.heard >= self.threshold

    def eff_reset(self, state):
        state.heard = 0

    def cand_reset(self, state):
        if state.heard >= self.threshold:
            yield act("reset")


class BoundedChannel(TransitionAutomaton):
    """A FIFO channel: ``put(m)`` inputs, ``deliver(m)`` outputs."""

    name = "channel"
    inputs = frozenset({"put"})
    outputs = frozenset({"deliver"})

    def initial_state(self):
        return State(queue=[])

    def eff_put(self, state, m):
        state.queue.append(m)

    def pre_deliver(self, state, m):
        return bool(state.queue) and state.queue[0] == m

    def eff_deliver(self, state, m):
        state.queue.pop(0)

    def cand_deliver(self, state):
        if state.queue:
            yield act("deliver", state.queue[0])
