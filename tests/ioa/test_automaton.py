"""Unit tests for actions, states and the automaton base classes."""

import pytest

from repro.ioa import Action, ActionNotEnabled, Kind, State, UnknownAction, act
from repro.ioa.state import fingerprint

from tests.ioa.helpers import BoundedChannel, Counter


class TestAction:
    def test_act_constructor(self):
        a = act("tick", 1, "p")
        assert a == Action("tick", (1, "p"))

    def test_actions_hashable(self):
        assert len({act("a", 1), act("a", 1), act("a", 2)}) == 2

    def test_str(self):
        assert str(act("tick")) == "tick"
        assert "tick(1" in str(act("tick", 1))

    def test_kind_externality(self):
        assert Kind.INPUT.is_external
        assert Kind.OUTPUT.is_external
        assert not Kind.INTERNAL.is_external


class TestState:
    def test_copy_isolates(self):
        s = State(items=[1], n=0)
        t = s.copy()
        t.items.append(2)
        t.n = 5
        assert s.items == [1]
        assert s.n == 0

    def test_value_equality(self):
        assert State(a={1, 2}) == State(a={2, 1})
        assert State(a=1) != State(a=2)

    def test_fingerprint_dict_order_independent(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_fingerprint_set_vs_frozenset(self):
        assert fingerprint({1, 2}) == fingerprint(frozenset({2, 1}))

    def test_fingerprint_list_vs_tuple(self):
        assert fingerprint([1, 2]) == fingerprint((1, 2))

    def test_fingerprint_nested(self):
        a = State(t={"x": [1, {2, 3}]})
        b = State(t={"x": [1, {3, 2}]})
        assert a.fingerprint() == b.fingerprint()


class TestTransitionAutomaton:
    def test_signature_classification(self):
        c = Counter()
        assert c.action_kind(act("tick")) is Kind.OUTPUT
        assert c.action_kind(act("reset")) is Kind.INPUT
        assert c.action_kind(act("nope")) is None

    def test_inputs_always_enabled(self):
        c = Counter()
        assert c.is_enabled(c.initial_state(), act("reset"))

    def test_precondition_gates_output(self):
        c = Counter(limit=1)
        s = c.initial_state()
        assert c.is_enabled(s, act("tick"))
        s2 = c.apply(s, act("tick"))
        assert not c.is_enabled(s2, act("tick"))

    def test_apply_returns_new_state(self):
        c = Counter()
        s = c.initial_state()
        s2 = c.apply(s, act("tick"))
        assert s.count == 0
        assert s2.count == 1

    def test_apply_rejects_unknown(self):
        with pytest.raises(UnknownAction):
            Counter().apply(Counter().initial_state(), act("zap"))

    def test_apply_rejects_disabled(self):
        c = Counter(limit=0)
        with pytest.raises(ActionNotEnabled):
            c.apply(c.initial_state(), act("tick"))

    def test_candidates_filtered_by_precondition(self):
        c = Counter(limit=0)
        assert c.enabled_controlled(c.initial_state()) == []

    def test_channel_fifo(self):
        ch = BoundedChannel()
        s = ch.initial_state()
        s = ch.apply(s, act("put", "a"))
        s = ch.apply(s, act("put", "b"))
        assert ch.enabled_controlled(s) == [act("deliver", "a")]
        s = ch.apply(s, act("deliver", "a"))
        assert ch.enabled_controlled(s) == [act("deliver", "b")]

    def test_deliver_wrong_message_disabled(self):
        ch = BoundedChannel()
        s = ch.apply(ch.initial_state(), act("put", "a"))
        assert not ch.is_enabled(s, act("deliver", "b"))
