"""Tests for action renaming and the fair scheduler."""

import pytest

from repro.core import make_view
from repro.ioa import (
    Composition,
    FairScheduler,
    Kind,
    Renamed,
    act,
    run_fair,
    run_random,
)

from tests.ioa.helpers import Counter, TickListener


class TestRenamed:
    def test_signature_renamed(self):
        renamed = Renamed(Counter(), {"tick": "beat"})
        assert "beat" in renamed.outputs
        assert "tick" not in renamed.outputs
        assert renamed.action_kind(act("beat")) is Kind.OUTPUT
        assert renamed.action_kind(act("tick")) is None

    def test_unmapped_names_pass_through(self):
        renamed = Renamed(Counter(), {"tick": "beat"})
        assert renamed.action_kind(act("reset")) is Kind.INPUT

    def test_transitions_through_rename(self):
        renamed = Renamed(Counter(limit=2), {"tick": "beat"})
        s = renamed.initial_state()
        s = renamed.apply(s, act("beat"))
        assert s.count == 1
        candidates = renamed.enabled_controlled(s)
        assert candidates == [act("beat")]

    def test_injective_required(self):
        with pytest.raises(ValueError):
            Renamed(Counter(), {"tick": "x", "reset": "x"})

    def test_two_instances_compose(self):
        """Renaming lets two counter instances coexist independently."""
        left = Renamed(Counter(limit=1, name="c1"),
                       {"tick": "tick_left", "reset": "reset_left"},
                       name="left")
        right = Renamed(Counter(limit=1, name="c2"),
                        {"tick": "tick_right", "reset": "reset_right"},
                        name="right")
        system = Composition([left, right])
        s = system.initial_state()
        s = system.apply(s, act("tick_left"))
        assert s.part("left").count == 1
        assert s.part("right").count == 0

    def test_renamed_group_service(self):
        """A renamed VS instance: a second independent group."""
        from repro.vs import VSSpec

        v0 = make_view(0, {"p1", "p2"})
        group_b = Renamed(
            VSSpec(v0, name="vs_b"),
            {
                "vs_gpsnd": "b_gpsnd",
                "vs_gprcv": "b_gprcv",
                "vs_safe": "b_safe",
                "vs_newview": "b_newview",
                "vs_createview": "b_createview",
                "vs_order": "b_order",
            },
            name="group_b",
        )
        s = group_b.initial_state()
        s = group_b.apply(s, act("b_gpsnd", "m", "p1"))
        assert s.pending.get(("p1", v0.id)) == ["m"]


class TestFairScheduler:
    def test_rotates_over_names(self):
        system = Composition([Counter(limit=100), TickListener(threshold=1)])
        ex = run_fair(system, 40, seed=0)
        names = {a.name for a in ex.actions()}
        assert names == {"tick", "reset"}
        # Roughly balanced, unlike a pure-random run over many ticks.
        from collections import Counter as C

        counts = C(a.name for a in ex.actions())
        assert abs(counts["tick"] - counts["reset"]) <= len(ex) // 2

    def test_deterministic(self):
        system = Composition([Counter(limit=5), TickListener(threshold=2)])
        a = run_fair(system, 30, seed=7).actions()
        b = run_fair(system, 30, seed=7).actions()
        assert a == b

    def test_reaches_rare_actions_without_weights(self):
        """On DVS-IMPL the fair scheduler exercises view changes without
        hand-tuned weights."""
        from repro.checking import build_closed_dvs_impl, random_view_pool

        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 2, seed=5, min_size=3)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=1
        )
        ex = run_fair(system, 600, seed=1)
        names = {a.name for a in ex.actions()}
        assert "vs_createview" in names
        assert "dvs_newview" in names
