"""The clean-tree gate: ``repro lint`` must pass on the shipped source.

This is the CI contract of DESIGN.md sections 7 and 10: every rule of
the automaton well-formedness, determinism, aliasing, thread-boundary
race, effect-escape and wire-schema passes holds on ``src/repro``
(modulo explicitly visible ``# lint: ignore`` sites -- there are no
blanket package exclusions).
"""

import os

from repro.lint import RULES, lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def test_source_tree_is_lint_clean():
    report = lint_paths([SRC])
    assert report.ok, "\n" + report.to_text()


def test_source_tree_scan_covers_the_package():
    report = lint_paths([SRC])
    # sanity: the walk really saw the tree (not an empty-dir false pass)
    assert report.files_scanned > 50


def test_rule_registry_shape():
    assert len(RULES) >= 27
    for rule_id, rule in RULES.items():
        assert rule_id == rule.id
        assert rule_id.startswith("DVS")
        assert rule.lint_pass in (
            "wellformed", "determinism", "aliasing",
            "races", "escape", "wire", "asyncflow", "taint",
            "typestate", "specconf",
        )
        assert rule.summary and rule.hint
        assert rule.level in ("error", "warning", "note")
    passes = {rule.lint_pass for rule in RULES.values()}
    assert passes == {
        "wellformed", "determinism", "aliasing",
        "races", "escape", "wire", "asyncflow", "taint",
        "typestate", "specconf",
    }


def test_clean_gate_covers_the_interprocedural_rules():
    # The gate above is only meaningful if the new passes actually ran
    # over the runtime package (no blanket excludes hide it).
    report = lint_paths([SRC])
    assert "races" in report.engine["passes"]
    assert "wire" in report.engine["passes"]
    assert "asyncflow" in report.engine["passes"]
    assert "taint" in report.engine["passes"]
    assert "typestate" in report.engine["passes"]
    assert "specconf" in report.engine["passes"]
    assert report.engine["ir_functions"] > 100
