"""Simulator executions get spans for free: arming ``obs=True`` on a
:class:`repro.gcs.cluster.Cluster` must produce complete causal spans
and metrics without touching the checked action vocabulary."""

import pytest

from repro.gcs.cluster import Cluster

PROCS = ["p1", "p2", "p3"]
REQUESTS = 8


@pytest.fixture
def traced():
    cluster = Cluster(PROCS, seed=11, obs=True)
    cluster.start().settle(max_time=500.0)
    for i in range(REQUESTS):
        cluster.bcast(PROCS[i % len(PROCS)], ("req", i))
    cluster.settle(max_time=10000.0)
    return cluster


def test_every_broadcast_yields_one_span_per_member(traced):
    rows = traced.obs.tracer.deliveries()
    assert len(rows) == REQUESTS * len(PROCS)
    assert traced.obs.tracer.orphans() == []
    by_label = {}
    for row in rows:
        by_label.setdefault(str(row["label"]), set()).add(row["dst"])
    assert all(dsts == set(PROCS) for dsts in by_label.values())


def test_stages_sum_exactly_to_total(traced):
    for row in traced.obs.tracer.deliveries():
        assert sum(row["stages"].values()) == pytest.approx(
            row["total"], abs=1e-9
        )
        assert row["total"] > 0


def test_metrics_count_the_workload(traced):
    snap = traced.obs.metrics.snapshot()
    assert snap["gcs.to.bcasts"]["value"] == REQUESTS
    assert snap["gcs.to.deliveries"]["value"] == REQUESTS * len(PROCS)
    lat = snap["gcs.to.delivery_latency_s"]
    assert lat["count"] == REQUESTS * len(PROCS)
    assert lat["p50"] is not None and lat["p50"] > 0


def test_probes_stay_out_of_the_checked_action_log(traced):
    """The tracer-only probe channel must never leak into the action
    vocabulary the trace-property checkers and monitor consume."""
    probe_names = {
        "to_label", "to_deliver", "to_established",
        "dvs_register_view", "vs_seq", "vs_round", "vs_form",
    }
    assert not any(a.name in probe_names for a in traced.log.actions)


def test_untraced_cluster_is_unchanged():
    plain = Cluster(PROCS, seed=11)
    plain.start().settle(max_time=500.0)
    for i in range(REQUESTS):
        plain.bcast(PROCS[i % len(PROCS)], ("req", i))
    plain.settle(max_time=10000.0)
    assert plain.obs is None
    deliveries = [a for a in plain.log.actions if a.name == "brcv"]
    assert len(deliveries) == REQUESTS * len(PROCS)


def test_view_change_produces_a_view_span():
    cluster = Cluster(PROCS, seed=3, obs=True)
    cluster.start().settle(max_time=500.0)
    cluster.bcast("p1", ("before", 0))
    cluster.settle(max_time=5000.0)
    cluster.crash("p3")
    cluster.settle(max_time=5000.0)
    cluster.bcast("p1", ("after", 1))
    cluster.settle(max_time=5000.0)
    spans = [
        s for s in cluster.obs.tracer.view_spans()
        if s["established_at"]
    ]
    assert spans, "the 2-of-3 reformation must appear as a view span"
    reformed = spans[-1]
    # The span covers connectivity change -> ... -> REGISTER, stitched
    # through the leader round via the vs_form probe.
    assert reformed["round"] is not None
    assert "vs_round" in reformed["stages"]
    assert "dvs_register" in reformed["stages"]
    assert reformed["duration"] >= 0
