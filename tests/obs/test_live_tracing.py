"""Span stitching across real sockets: a 3-node loopback cluster with
``obs=True`` must produce complete, orphan-free spans whose stages sum
exactly to the end-to-end latency, plus live transport metrics."""

import pytest

from repro.apps.kv_store import KvReplica
from repro.runtime.cluster import RuntimeCluster

PIDS = ["n1", "n2", "n3"]
WAIT = 60.0
REQUESTS = 12


@pytest.fixture
def cluster():
    c = RuntimeCluster(
        PIDS,
        app_factory=lambda node: KvReplica(node.to),
        hb_interval=0.05,
        hb_timeout=0.25,
        obs=True,
    )
    with c:
        c.wait_formation(timeout=WAIT)
        for i in range(REQUESTS):
            pid = PIDS[i % len(PIDS)]
            c.call_app(
                pid, lambda app, i=i: app.put("k{0}".format(i), i)
            )
        c.wait_until(
            lambda: all(
                c.app(pid).log_length >= REQUESTS for pid in PIDS
            ),
            timeout=WAIT,
            what="all requests applied",
        )
        yield c


def test_spans_stitch_across_the_wire_with_zero_orphans(cluster):
    trace = cluster.trace_snapshot()
    assert trace["orphans"] == []
    assert trace["summary"]["deliveries"] == REQUESTS * len(PIDS)
    assert trace["summary"]["messages"] == REQUESTS
    assert trace["summary"]["events_dropped"] == 0
    for row in trace["deliveries"]:
        assert row["total_ms"] > 0
        assert sum(row["stages_ms"].values()) == pytest.approx(
            row["total_ms"], rel=1e-9, abs=1e-9
        )


def test_cross_node_deliveries_show_wire_time(cluster):
    trace = cluster.trace_snapshot()
    remote = [
        row for row in trace["deliveries"]
        if row["dst"] != row["origin"]
    ]
    assert remote
    # Ordered frames to a remote member really crossed TCP: the wire
    # stage must be visible (strictly positive) on at least most of
    # them (a hop collapses to 0 only if its endpoints coincide).
    with_wire = [r for r in remote if r["stages_ms"]["wire"] > 0]
    assert len(with_wire) >= len(remote) * 0.8


def test_live_metrics_cover_transport_and_gcs(cluster):
    snap = cluster.metrics_snapshot()
    assert snap["gcs.to.bcasts"]["value"] == REQUESTS
    assert snap["gcs.to.deliveries"]["value"] == REQUESTS * len(PIDS)
    for pid in PIDS:
        base = "runtime.{0}.transport.".format(pid)
        assert snap[base + "frames_out"]["value"] > 0
        assert snap[base + "bytes_out"]["value"] > 0
        assert snap[base + "frames_in"]["value"] > 0
        assert snap[base + "bytes_in"]["value"] > 0
        # Every node successfully dialed at least one peer.
        assert snap[base + "reconnects"]["value"] >= 1
    combined = cluster.obs_snapshot()
    assert combined["trace"]["orphans"] == 0
    assert combined["metrics"]["gcs.to.bcasts"]["value"] == REQUESTS


def test_latency_histogram_matches_trace_totals(cluster):
    snap = cluster.metrics_snapshot()
    trace = cluster.trace_snapshot()
    lat = snap["gcs.to.delivery_latency_s"]
    assert lat["count"] == trace["summary"]["deliveries"]
    # The histogram's max (a bucket-rounded bound >= the true sample)
    # must dominate the trace's exact per-delivery max.
    true_max_s = max(
        row["total_ms"] for row in trace["deliveries"]
    ) / 1e3
    assert lat["max"] == pytest.approx(true_max_s, rel=1e-6)
