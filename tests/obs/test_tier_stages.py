"""Tier-agnostic span decomposition: one tracer, two ordering towers.

A mixed TO+CB workload must yield one complete span per delivery in
*either* tier, each row labelled with its tier and decomposing exactly
into ``wire + vs + dvs + <tier>`` -- and the summary must break the
population out per tier.
"""

import json

import pytest

from repro.gcs.cluster import Cluster
from repro.obs.trace import TIERS

PROCS = ["p1", "p2", "p3"]
TO_REQUESTS = 4
CB_REQUESTS = 6


@pytest.fixture
def traced():
    cluster = Cluster(PROCS, seed=21, obs=True)
    cluster.start().settle(max_time=500.0)
    for i in range(TO_REQUESTS):
        cluster.bcast(PROCS[i % 3], ("t", i), ordering="to")
    for i in range(CB_REQUESTS):
        cluster.bcast(PROCS[i % 3], ("c", i), ordering="cb")
    cluster.settle(max_time=10000.0)
    return cluster


def test_tier_registry_names_both_towers():
    assert TIERS == {"msg": "to", "cbmsg": "cb"}


def test_rows_carry_their_tier(traced):
    rows = traced.obs.tracer.deliveries()
    by_tier = {"to": 0, "cb": 0}
    for row in rows:
        by_tier[row["tier"]] += 1
    assert by_tier["to"] == TO_REQUESTS * len(PROCS)
    assert by_tier["cb"] == CB_REQUESTS * len(PROCS)
    assert traced.obs.tracer.orphans() == []


def test_stage_decomposition_is_exact_per_tier(traced):
    for row in traced.obs.tracer.deliveries():
        stages = row["stages"]
        # The ordering stage is named after the tier; the substrate
        # stages are shared.
        assert set(stages) == {row["tier"], "dvs", "wire", "vs"}
        assert sum(stages.values()) == pytest.approx(
            row["total"], abs=1e-9
        )


def test_summary_breaks_out_tiers(traced):
    summary = traced.obs.tracer.stage_summary()
    assert summary["deliveries_by_tier"] == {
        "to": TO_REQUESTS * len(PROCS),
        "cb": CB_REQUESTS * len(PROCS),
    }
    assert summary["messages"] == TO_REQUESTS + CB_REQUESTS
    stages = summary["stages"]
    for name in ("wire", "vs", "dvs", "to", "cb", "total"):
        assert name in stages
        assert stages[name]["p50_ms"] >= 0

    def population(name):
        return stages[name]["count"]

    # Substrate stages span both tiers; ordering stages only their own.
    assert population("to") == TO_REQUESTS * len(PROCS)
    assert population("cb") == CB_REQUESTS * len(PROCS)
    assert population("total") == population("to") + population("cb")


def test_cb_metrics_count_the_workload(traced):
    snap = traced.obs.metrics.snapshot()
    assert snap["gcs.cb.cbcasts"]["value"] == CB_REQUESTS
    assert snap["gcs.cb.deliveries"]["value"] == (
        CB_REQUESTS * len(PROCS)
    )
    lat = snap["gcs.cb.delivery_latency_s"]
    assert lat["count"] == CB_REQUESTS * len(PROCS)
    assert lat["p50"] is not None and lat["p50"] > 0


def test_snapshot_is_json_serializable_with_tiers(traced):
    document = traced.obs.tracer.to_json_dict()
    encoded = json.loads(json.dumps(document))
    tiers = {row["tier"] for row in encoded["deliveries"]}
    assert tiers == {"to", "cb"}


def test_cb_probes_stay_out_of_the_checked_action_log(traced):
    assert not any(
        a.name in ("cb_label", "cb_deliver") for a in traced.log.actions
    )
