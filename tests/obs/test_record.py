"""Trace format round-trips and robustness.

Mirrors the wire-codec test contract (tests/runtime/test_codec.py):
*identity* -- ``ReplayTrace.from_bytes(t.to_bytes()) == t`` for
hand-picked examples and hypothesis-generated traces -- and
*robustness* -- truncated, corrupted or hostile trace bytes raise
:class:`~repro.obs.record.TraceError`, never an arbitrary exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.messages import Data
from repro.obs.record import (
    EVENT_KINDS,
    TRACE_MAGIC,
    TRACE_VERSION,
    ReplayTrace,
    TraceError,
    TraceEvent,
    TraceRecorder,
)
from repro.runtime.codec import encode_frame

V1 = ViewId(1, "p1")
VIEW = View(V1, frozenset({"p1", "p2", "p3"}))

EXAMPLE = ReplayTrace(
    ["p2", "p1", "p3"],
    VIEW,
    [
        TraceEvent(0.0, "p1", "start", (True,)),
        TraceEvent(0.1, "p1", "conn", (("p1", "p2", "p3"),)),
        TraceEvent(0.2, "p2", "recv", ("p1", Data(V1, ("w", "p1", 0), "p1"))),
        TraceEvent(0.3, "p1", "bcast", (("w", "p1", 0),)),
        TraceEvent(0.4, "*", "nemesis", ("partition [...]",)),
        TraceEvent(0.5, "p3", "timer", ("hb",)),
        TraceEvent(0.6, "p3", "stop"),
    ],
    dvs="nomajority",
    source="test",
)


class TestRoundTrip:
    def test_example_round_trip(self):
        again = ReplayTrace.from_bytes(EXAMPLE.to_bytes())
        assert again == EXAMPLE
        assert again.processes == ("p1", "p2", "p3")  # sorted on build
        assert again.dvs == "nomajority"
        assert again.source == "test"

    def test_save_load(self, tmp_path):
        path = tmp_path / "run.trace"
        EXAMPLE.save(path)
        assert ReplayTrace.load(path) == EXAMPLE

    def test_events_coerced_from_tuples(self):
        trace = ReplayTrace(["a"], VIEW, [(1.0, "a", "stop", ())])
        assert trace.events[0] == TraceEvent(1.0, "a", "stop")

    def test_describe_limits(self):
        text = EXAMPLE.describe(limit=2)
        assert "5 more" in text
        assert "nemesis" not in text


class TestShrinkSurface:
    """The subset/without/len/hash surface shrink_plan relies on."""

    def test_subset_keeps_order(self):
        sub = EXAMPLE.subset([4, 0, 2])
        assert [e.kind for e in sub] == ["start", "recv", "nemesis"]
        assert sub.initial_view == EXAMPLE.initial_view
        assert sub.dvs == EXAMPLE.dvs

    def test_without_drops(self):
        assert len(EXAMPLE.without(range(len(EXAMPLE)))) == 0
        assert EXAMPLE.without([]) == EXAMPLE

    def test_hashable_for_ddmin_cache(self):
        assert hash(EXAMPLE.subset([0, 1])) == hash(EXAMPLE.without(
            range(2, len(EXAMPLE))
        ))
        assert isinstance(hash(TraceEvent(0.0, "p", "stop")), int)


# -- Hypothesis: generated traces ---------------------------------------------

pids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-.", min_size=1,
    max_size=8,
)
viewids = st.builds(
    ViewId, st.integers(min_value=0, max_value=2**31), pids
)
views = st.builds(
    View, viewids, st.frozensets(pids, min_size=1, max_size=5)
)

payloads = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=3),
    ),
    max_leaves=8,
)

events = st.builds(
    TraceEvent,
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    pids,
    st.sampled_from(EVENT_KINDS),
    st.tuples(payloads),
)

traces = st.builds(
    ReplayTrace,
    st.frozensets(pids, min_size=1, max_size=5),
    views,
    st.lists(events, max_size=20),
    dvs=st.sampled_from(["normal", "nomajority"]),
    source=st.sampled_from(["live", "sim"]),
)


@settings(max_examples=100, deadline=None)
@given(trace=traces)
def test_generated_trace_round_trip(trace):
    assert ReplayTrace.from_bytes(trace.to_bytes()) == trace


@settings(max_examples=100, deadline=None)
@given(trace=traces, cut=st.integers(min_value=1, max_value=200))
def test_truncated_trace_is_typed_error(trace, cut):
    data = trace.to_bytes()
    truncated = data[: len(data) - min(cut, len(data) - 1)]
    with pytest.raises(TraceError):
        ReplayTrace.from_bytes(truncated)


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=80))
def test_garbage_bytes_never_crash(data):
    try:
        ReplayTrace.from_bytes(data)
    except TraceError:
        pass  # the only acceptable exception


# -- Hostile-but-well-framed input --------------------------------------------


def _frames(*values):
    return b"".join(encode_frame(v) for v in values)


def _header(count=1):
    """A well-formed v2 header promising ``count`` event frames."""
    return (TRACE_MAGIC, TRACE_VERSION, ("p1",), VIEW, "normal",
            "live", count)


HEADER = _header()


class TestHostileInput:
    def test_empty_input(self):
        with pytest.raises(TraceError, match="empty"):
            ReplayTrace.from_bytes(b"")

    def test_bad_magic(self):
        with pytest.raises(TraceError, match="not a dvs-trace"):
            ReplayTrace.from_bytes(_frames(
                ("not-a-trace", TRACE_VERSION, ("p1",), VIEW, "n", "l")
            ))

    def test_wire_message_is_not_a_header(self):
        with pytest.raises(TraceError, match="not a dvs-trace"):
            ReplayTrace.from_bytes(_frames(VIEW))

    def test_future_version(self):
        with pytest.raises(TraceError, match="version"):
            ReplayTrace.from_bytes(_frames(
                (TRACE_MAGIC, TRACE_VERSION + 1, ("p1",), VIEW, "n", "l")
            ))

    def test_malformed_process_list(self):
        with pytest.raises(TraceError, match="process list"):
            ReplayTrace.from_bytes(_frames(
                (TRACE_MAGIC, TRACE_VERSION, ("p1", 2), VIEW, "n", "l", 0)
            ))

    def test_initial_view_not_a_view(self):
        with pytest.raises(TraceError, match="View"):
            ReplayTrace.from_bytes(_frames(
                (TRACE_MAGIC, TRACE_VERSION, ("p1",), "view?", "n", "l", 0)
            ))

    def test_v1_header_reports_its_version(self):
        # Pre-count header shape: classified by version, not as garbage.
        with pytest.raises(TraceError, match="version 1"):
            ReplayTrace.from_bytes(_frames(
                (TRACE_MAGIC, 1, ("p1",), VIEW, "n", "l")
            ))

    def test_malformed_event_count(self):
        with pytest.raises(TraceError, match="event count"):
            ReplayTrace.from_bytes(_frames(_header(count=True)))

    def test_boundary_truncation_is_detected(self):
        # Cutting exactly at a frame boundary leaves no pending bytes;
        # only the header's event count can expose the loss.
        whole = _frames(_header(count=2), (0.0, "p1", "stop", ()),
                        (1.0, "p1", "stop", ()))
        boundary = len(_frames(_header(count=2), (0.0, "p1", "stop", ())))
        with pytest.raises(TraceError, match="truncated"):
            ReplayTrace.from_bytes(whole[:boundary])

    def test_trailing_frames_are_detected(self):
        with pytest.raises(TraceError, match="trailing"):
            ReplayTrace.from_bytes(_frames(
                _header(count=0), (0.0, "p1", "stop", ())
            ))

    def test_event_not_a_tuple(self):
        with pytest.raises(TraceError, match="event #0"):
            ReplayTrace.from_bytes(_frames(HEADER, "surprise"))

    def test_event_unknown_kind(self):
        with pytest.raises(TraceError, match="unknown kind"):
            ReplayTrace.from_bytes(_frames(
                HEADER, (0.0, "p1", "exec", ())
            ))

    def test_event_non_string_pid(self):
        with pytest.raises(TraceError, match="non-string pid"):
            ReplayTrace.from_bytes(_frames(HEADER, (0.0, 7, "stop", ())))

    def test_event_non_numeric_time(self):
        with pytest.raises(TraceError, match="non-numeric time"):
            ReplayTrace.from_bytes(_frames(
                HEADER, ("soon", "p1", "stop", ())
            ))

    def test_event_data_not_tuple(self):
        with pytest.raises(TraceError, match="data is not a tuple"):
            ReplayTrace.from_bytes(_frames(
                HEADER, (0.0, "p1", "stop", [1])
            ))

    def test_trace_event_rejects_unknown_kind_at_build(self):
        with pytest.raises(TraceError, match="unknown trace event kind"):
            TraceEvent(0.0, "p1", "banana")


class TestTraceRecorder:
    def test_record_preserves_order_and_data(self):
        rec = TraceRecorder()
        rec.record(0.0, "a", "start", True)
        rec.record(0.5, "a", "recv", "b", "msg")
        trace = rec.trace(["a", "b"], VIEW)
        assert [e.as_tuple() for e in trace] == [
            (0.0, "a", "start", (True,)),
            (0.5, "a", "recv", ("b", "msg")),
        ]

    def test_on_action_captures_only_bcasts(self):
        from repro.ioa.action import Action

        rec = TraceRecorder()
        rec.on_action(1.0, Action("bcast", (("w", "a", 0), "a")))
        rec.on_action(1.1, Action("brcv", (("w", "a", 0), "a", "b")))
        assert len(rec.events) == 1
        assert rec.events[0].kind == "bcast"
        assert rec.events[0].pid == "a"
        assert rec.events[0].data == (("w", "a", 0),)

    def test_limit_forgets_oldest(self):
        rec = TraceRecorder(limit=10)
        for i in range(25):
            rec.record(float(i), "a", "timer", "t")
        assert len(rec.events) <= 20
        assert rec.dropped > 0
        # The newest events survive.
        assert rec.events[-1].t == 24.0
