"""Unit tests for the metrics registry: counters, gauges and the
log-bucketed histogram's bucket arithmetic."""

import json

import pytest

from repro.obs import Histogram, MetricsRegistry


def test_counter_and_gauge_snapshots():
    registry = MetricsRegistry()
    counter = registry.counter("a.count")
    counter.inc()
    counter.inc(4)
    gauge = registry.gauge("a.depth")
    gauge.set(3)
    gauge.set(7)
    gauge.set(2)
    snap = registry.snapshot()
    assert snap["a.count"] == {"type": "counter", "value": 5}
    assert snap["a.depth"] == {"type": "gauge", "value": 2, "high": 7}


def test_registry_get_or_create_and_kind_clash():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert len(registry) == 1
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_histogram_bucket_index_boundaries():
    h = Histogram(base=1.0)
    # Bucket 0 covers [0, base]; bucket i covers (base*2**(i-1), base*2**i].
    assert h.bucket_index(0.0) == 0
    assert h.bucket_index(1.0) == 0
    assert h.bucket_index(1.0000001) == 1
    assert h.bucket_index(2.0) == 1
    assert h.bucket_index(2.0000001) == 2
    assert h.bucket_index(4.0) == 2
    # Exact powers of two must not fall one bucket low to float noise.
    for exp in range(1, 40):
        assert h.bucket_index(2.0 ** exp) == exp
    assert h.bucket_bound(3) == 8.0


def test_histogram_percentiles_are_bucket_upper_bounds():
    h = Histogram(base=1.0)
    for value in [0.5, 1.5, 1.6, 3.0, 3.5, 3.9, 7.0, 7.5, 100.0]:
        h.observe(value)
    # Buckets: b0 holds 1, b1 holds 2, b2 holds 3, b3 holds 2,
    # b7 holds 1 (total 9).
    assert h.percentile(0.50) == 4.0  # 5th of 9 lands in bucket 2
    assert h.percentile(0.95) == 128.0
    assert h.count == 9
    assert h.min == 0.5 and h.max == 100.0
    assert h.mean == pytest.approx(sum(
        [0.5, 1.5, 1.6, 3.0, 3.5, 3.9, 7.0, 7.5, 100.0]) / 9)


def test_histogram_empty_and_negative_samples():
    h = Histogram()
    assert h.percentile(0.5) is None
    assert h.mean is None
    h.observe(-1.0)  # clamped to zero, not a crash
    assert h.min == 0.0
    assert h.percentile(0.5) == h.base


def test_snapshot_is_json_ready_and_deterministic():
    def build():
        registry = MetricsRegistry()
        registry.counter("z.last").inc(2)
        registry.counter("a.first").inc(1)
        h = registry.histogram("m.lat", base=1e-6)
        for value in [1e-6, 5e-6, 2e-3]:
            h.observe(value)
        return registry

    first, second = build(), build()
    assert first.to_json() == second.to_json()
    decoded = json.loads(first.to_json())
    assert list(decoded) == sorted(decoded)
    assert decoded["m.lat"]["count"] == 3
