"""Unit tests for the span ring and the tracer's stitching logic, on
hand-built event sequences (no cluster)."""

from repro.core.viewids import ViewId
from repro.gcs.messages import Data, Ordered
from repro.obs import SpanEvent, SpanRing, Tracer
from repro.to.summaries import Label

VID = ViewId(1, "p1")
LABEL = Label(VID, 1, "p1")


def _event(seq, stage="to_label", pid="p1", t=0.0):
    return SpanEvent(key=("msg", LABEL), stage=stage, pid=pid, t=t,
                     seq=seq)


def test_ring_keeps_everything_below_capacity():
    ring = SpanRing(capacity=8)
    events = [_event(i) for i in range(5)]
    for event in events:
        ring.append(event)
    assert len(ring) == 5
    assert ring.dropped == 0
    assert ring.snapshot() == events


def test_ring_overflow_overwrites_oldest_and_counts_drops():
    ring = SpanRing(capacity=4)
    events = [_event(i) for i in range(10)]
    for event in events:
        ring.append(event)
    assert ring.appended == 10
    assert len(ring) == 4
    assert ring.dropped == 6
    # The live window is the newest four, oldest first.
    assert ring.snapshot() == events[6:]


def test_ring_rejects_nonpositive_capacity():
    import pytest

    with pytest.raises(ValueError):
        SpanRing(capacity=0)


def _feed_full_span(tracer, dst="p3"):
    """Emit one complete broadcast span for LABEL: origin p1 forwards
    Data to sequencer p2, which orders it for ``dst``."""
    payload = (LABEL, "hello")
    tracer.on_action(1.0, "to_label", (LABEL, "p1"))
    tracer.on_action(2.0, "dvs_gpsnd", (payload, "p1"))
    tracer.on_action(3.0, "vs_gpsnd", (payload, "p1"))
    data = Data(VID, payload, "p1")
    ordered = Ordered(VID, 1, payload, "p2")
    tracer.wire_event("wire_send", "p1", "p2", data, 4.0)
    tracer.wire_event("wire_recv", "p2", "p1", data, 6.0)
    tracer.on_action(7.0, "vs_seq", (payload, "p2"))
    tracer.wire_event("wire_send", "p2", dst, ordered, 8.0)
    tracer.wire_event("wire_recv", dst, "p2", ordered, 11.0)
    tracer.on_action(12.0, "vs_gprcv", (payload, "p1", dst))
    tracer.on_action(13.0, "dvs_gprcv", (payload, "p1", dst))
    tracer.on_action(15.0, "to_deliver", (LABEL, dst))


def test_tracer_stitches_one_delivery_with_exact_stage_sum():
    tracer = Tracer()
    _feed_full_span(tracer, "p3")
    rows = tracer.deliveries()
    assert len(rows) == 1
    row = rows[0]
    assert row["label"] == LABEL
    assert row["origin"] == "p1"
    assert row["dst"] == "p3"
    assert row["total"] == 14.0
    # to: label->dvs_send (1) + dvs_deliver->deliver (2) = 3
    # dvs: dvs_send->vs_send (1) + vs_deliver->dvs_deliver (1) = 2
    # wire: both hops (2 + 3) = 5; vs is the exact residual.
    assert row["stages"]["to"] == 3.0
    assert row["stages"]["dvs"] == 2.0
    assert row["stages"]["wire"] == 5.0
    assert row["stages"]["vs"] == 4.0
    assert sum(row["stages"].values()) == row["total"]
    assert tracer.orphans() == []


def test_tracer_flags_orphan_deliveries():
    tracer = Tracer()
    # A delivery with no to_label root (its origin's ring was lost).
    tracer.on_action(5.0, "to_deliver", (LABEL, "p3"))
    assert tracer.orphans() == [(LABEL, "p3")]
    assert tracer.deliveries() == []
    summary = tracer.stage_summary()
    assert summary["orphans"] == 1
    assert summary["deliveries"] == 0


def test_tracer_untraced_wire_messages_are_ignored():
    from repro.runtime.codec import Heartbeat

    tracer = Tracer()
    tracer.wire_event("wire_send", "p1", "p2", Heartbeat(), 1.0)
    tracer.wire_event("wire_send", "p1", "p2", object(), 1.0)
    assert tracer.events() == []


def test_view_span_links_round_via_vs_form():
    tracer = Tracer()
    round_id = ("p1", 7)
    tracer.on_action(1.0, "vs_round", (round_id, "p1"))
    tracer.on_action(2.0, "vs_form", (round_id, VID, "p1"))
    tracer.on_action(3.0, "vs_newview", (_FakeView(VID), "p1"))
    tracer.on_action(4.0, "dvs_newview", (_FakeView(VID), "p1"))
    tracer.on_action(5.0, "to_established", (VID, "p1"))
    tracer.on_action(6.0, "dvs_register_view", (VID, "p1"))
    spans = tracer.view_spans()
    assert len(spans) == 1
    span = spans[0]
    assert span["view"] == VID
    assert span["round"] == round_id
    assert span["established_at"] == ["p1"]
    # vs_round is pulled in through the vs_form linkage, so the span
    # covers connectivity-change -> REGISTER.
    assert span["stages"]["vs_round"] == 1.0
    assert span["stages"]["dvs_register"] == 6.0
    assert span["duration"] == 5.0


class _FakeView:
    def __init__(self, vid):
        self.id = vid


def test_to_json_dict_is_json_serializable():
    import json

    tracer = Tracer()
    _feed_full_span(tracer)
    data = tracer.to_json_dict()
    encoded = json.dumps(data, sort_keys=True)
    assert "stages_ms" in encoded
    assert data["summary"]["deliveries"] == 1
    assert data["deliveries"][0]["total_ms"] == 14000.0
