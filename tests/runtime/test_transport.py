"""Transport behaviour on real loopback sockets.

Each test runs its own short-lived event loop via ``asyncio.run``; every
wait is bounded by ``asyncio.wait_for`` so a regression hangs for
seconds, not forever.
"""

import asyncio

import pytest

from repro.runtime.codec import Heartbeat, Hello, encode_frame
from repro.runtime.transport import Listener, PeerLink

WAIT = 5.0


async def poll_until(predicate, timeout=WAIT, interval=0.01):
    async def loop():
        while not predicate():
            await asyncio.sleep(interval)

    await asyncio.wait_for(loop(), timeout)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


def collector():
    frames = []

    def on_frame(src, msg):
        frames.append((src, msg))

    return frames, on_frame


def test_link_delivers_in_order_after_handshake():
    async def scenario():
        frames, on_frame = collector()
        listener = await Listener(on_frame).start()
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", listener.port)
        ).start()
        for i in range(20):
            link.send(Heartbeat() if i % 5 == 0 else ("m", i))
        await poll_until(lambda: len(frames) >= 21)  # +1 for the Hello
        assert frames[0] == ("a", Hello("a"))
        payloads = [m for _, m in frames[1:] if not isinstance(m, Heartbeat)]
        assert payloads == [("m", i) for i in range(20) if i % 5 != 0]
        assert all(src == "a" for src, _ in frames)
        await link.close()
        await listener.close()

    run(scenario())


def test_link_queues_while_peer_down_and_flushes_on_connect():
    async def scenario():
        frames, on_frame = collector()
        book = {}
        link = PeerLink(
            "a", "b", resolve=lambda: book["b"], retry_min=0.01
        ).start()
        for i in range(5):
            link.send(("early", i))
        await asyncio.sleep(0.05)  # retrying against a missing entry
        listener = await Listener(on_frame).start()
        book["b"] = ("127.0.0.1", listener.port)
        await poll_until(lambda: len(frames) >= 6)
        assert [m for _, m in frames[1:]] == [("early", i) for i in range(5)]
        await link.close()
        await listener.close()

    run(scenario())


def test_link_redials_new_port_after_peer_restart():
    async def scenario():
        frames, on_frame = collector()
        book = {}
        first = await Listener(on_frame).start()
        book["b"] = ("127.0.0.1", first.port)
        link = PeerLink(
            "a", "b", resolve=lambda: book["b"], retry_min=0.01
        ).start()
        link.send("one")
        await poll_until(lambda: ("a", "one") in frames)
        # Peer "restarts": the old listener dies (dropping established
        # connections), a new one binds elsewhere, the book is updated.
        await first.close()
        second = await Listener(on_frame).start()
        assert second.port != first.port
        book["b"] = ("127.0.0.1", second.port)
        sent = ["two-{0}".format(i) for i in range(50)]
        for msg in sent:
            link.send(msg)
            await asyncio.sleep(0.005)
        await poll_until(
            lambda: any(m == sent[-1] for _, m in frames)
        )
        assert link.connects >= 2
        # Fair-lossy: in-flight frames at the switchover may be lost,
        # but delivery resumes and stays in order.
        delivered = [m for _, m in frames if m in sent]
        assert delivered == sorted(delivered, key=sent.index)
        await link.close()
        await second.close()

    run(scenario())


def test_full_queue_drops_oldest():
    async def scenario():
        link = PeerLink(
            "a", "b", resolve=lambda: (_ for _ in ()).throw(KeyError("b")),
            queue_limit=3, retry_min=0.01,
        ).start()
        for i in range(10):
            link.send(("m", i))
        assert link.dropped == 7
        assert link._queue.qsize() == 3
        await link.close()

    run(scenario())


@pytest.mark.parametrize(
    "first_frames",
    [
        [b"\x00\x00\x00\x04junk"],  # undecodable body
        [encode_frame(("a", Heartbeat()))],  # skipped the handshake
        [encode_frame(("a", Hello("someone-else")))],  # pid mismatch
        [encode_frame("not-an-envelope")],  # not a (src, msg) tuple
        [
            encode_frame(("a", Hello("a"))),
            encode_frame(("b", Heartbeat())),  # sender switched mid-stream
        ],
    ],
    ids=["garbage", "no-hello", "pid-mismatch", "bad-envelope", "switch"],
)
def test_protocol_violations_drop_connection_only(first_frames):
    async def scenario():
        frames, on_frame = collector()
        listener = await Listener(on_frame).start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", listener.port
        )
        for frame in first_frames:
            writer.write(frame)
        await writer.drain()
        await poll_until(lambda: listener.rejected == 1)
        # The violator is disconnected...
        assert await asyncio.wait_for(reader.read(), WAIT) == b""
        writer.close()
        # ...but the listener still serves well-behaved peers.
        link = PeerLink(
            "c", "b", resolve=lambda: ("127.0.0.1", listener.port)
        ).start()
        link.send("fine")
        await poll_until(lambda: ("c", "fine") in frames)
        await link.close()
        await listener.close()

    run(scenario())


def test_callback_exception_reported_and_contained():
    async def scenario():
        errors = []

        def explode(src, msg):
            raise RuntimeError("handler bug")

        listener = await Listener(explode, on_error=errors.append).start()
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", listener.port)
        ).start()
        link.send("boom")
        await poll_until(lambda: len(errors) >= 1)
        assert isinstance(errors[0], RuntimeError)
        await link.close()
        await listener.close()

    run(scenario())


def test_listener_close_drops_established_connections():
    async def scenario():
        frames, on_frame = collector()
        listener = await Listener(on_frame).start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", listener.port
        )
        writer.write(encode_frame(("a", Hello("a"))))
        await writer.drain()
        await poll_until(lambda: len(frames) == 1)
        await listener.close()
        # The dialer observes EOF -- this is what lets a PeerLink notice
        # a dead peer and redial instead of writing into a zombie socket.
        assert await asyncio.wait_for(reader.read(), WAIT) == b""
        writer.close()

    run(scenario())
