"""Wire-schema migration: version 1 -> 2 (the CbCast addition).

Adding a message type is a *versioned* change in this codec: an
older peer rejects unknown ``@`` type references, so v2 speakers must
(a) still accept v1 bodies byte-for-byte and (b) refuse versions they
do not know, with a typed error naming both sides.  The golden bytes
below are literal v1-era frames -- they must keep decoding forever.
"""

import pytest

from repro.cb.messages import CbCast
from repro.core.viewids import ViewId
from repro.runtime.codec import (
    SUPPORTED_WIRE_VERSIONS,
    WIRE_SCHEMA,
    WIRE_TYPES,
    WIRE_VERSION,
    CodecError,
    decode,
    decode_frame,
    encode,
    encode_frame,
    schema_drift,
    validate_message,
)

#: Literal bodies produced by the version-1 codec (before CbCast
#: existed).  Golden: do not regenerate from the current encoder.
GOLDEN_V1_TUPLE = b'\x01["t",[["s","w"],["s","n1"],["i",3]]]'
GOLDEN_V1_VIEWID = b'\x01["@","ViewId",[["i",0],["s",""]]]'


class TestVersioning:
    def test_current_version_and_acceptance_window(self):
        assert WIRE_VERSION == 2
        assert SUPPORTED_WIRE_VERSIONS == (1, 2)
        assert WIRE_VERSION in SUPPORTED_WIRE_VERSIONS

    def test_encode_stamps_the_current_version(self):
        assert encode(("w", "n1", 3))[0] == WIRE_VERSION

    def test_golden_v1_bodies_still_decode(self):
        assert decode(GOLDEN_V1_TUPLE) == ("w", "n1", 3)
        assert decode(GOLDEN_V1_VIEWID) == ViewId(0, "")

    def test_future_version_is_rejected_with_both_sides_named(self):
        body = bytes([3]) + encode(("x",))[1:]
        with pytest.raises(CodecError) as err:
            decode(body)
        message = str(err.value)
        assert "unsupported wire version 3" in message
        assert "speaking 2" in message
        assert "(1, 2)" in message

    def test_version_zero_is_rejected(self):
        body = bytes([0]) + encode(("x",))[1:]
        with pytest.raises(CodecError):
            decode(body)


class TestCbCastOnTheWire:
    def cast(self):
        return CbCast(
            ViewId(4, "n2"),
            (("n1", 2), ("n2", 5)),
            ("presence", "online"),
            "n2",
        )

    def test_round_trip(self):
        cast = self.cast()
        assert decode(encode(cast)) == cast

    def test_frame_round_trip(self):
        cast = self.cast()
        assert decode_frame(encode_frame(cast)) == cast

    def test_registered_and_pinned(self):
        assert CbCast in WIRE_TYPES
        assert WIRE_SCHEMA["CbCast"] == (
            ("vid", "ViewId"),
            ("clock", "Tuple[Tuple[str, int], ...]"),
            ("payload", "object"),
            ("origin", "str"),
        )
        assert not schema_drift()

    def test_validates(self):
        assert validate_message(self.cast())

    def test_v1_peer_would_reject_it(self):
        """The reason the addition is versioned: a CbCast body names a
        type a v1 decoder does not know.  Simulate that decoder (same
        scheme, no CbCast registration) via a malformed reference."""
        body = encode(self.cast())
        tampered = body.replace(b'"CbCast"', b'"CbXast"')
        with pytest.raises(CodecError) as err:
            decode(tampered)
        assert "unknown type" in str(err.value)
