"""RuntimeNode plumbing and the heartbeat connectivity estimator."""

import asyncio

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.gcs.messages import Data
from repro.runtime.heartbeat import ConnectivityEstimator
from repro.runtime.node import MonotonicClock, RuntimeNode

WAIT = 10.0


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


async def poll_until(predicate, timeout=WAIT, interval=0.01):
    async def loop():
        while not predicate():
            await asyncio.sleep(interval)

    await asyncio.wait_for(loop(), timeout)


def make_view(pids):
    return View(ViewId(0, ""), frozenset(pids))


# -- Estimator (pure unit: stub clock, no sockets) ----------------------------


class StubClock:
    def __init__(self):
        self.now = 0.0


def make_estimator(clock, reports, beacons, **kwargs):
    kwargs.setdefault("interval", 1.0)
    return ConnectivityEstimator(
        "p1",
        peers=lambda: ["p2", "p3"],
        clock=clock,
        send_heartbeats=lambda: beacons.append(clock.now),
        notify=reports.append,
        **kwargs,
    )


def test_estimator_reports_heard_peers_within_timeout():
    clock, reports, beacons = StubClock(), [], []
    est = make_estimator(clock, reports, beacons, timeout=4.0, grace=0.0)
    est.heard("p2")
    est.poll()
    assert reports == [frozenset({"p1", "p2"})]
    clock.now = 3.0
    est.heard("p3")
    est.poll()
    assert reports[-1] == frozenset({"p1", "p2", "p3"})
    # p2 last heard at 0.0 expires once the horizon passes it.
    clock.now = 5.0
    est.poll()
    assert reports[-1] == frozenset({"p1", "p3"})
    assert len(beacons) == 3  # one beacon per poll


def test_estimator_reports_only_changes():
    clock, reports, beacons = StubClock(), [], []
    est = make_estimator(clock, reports, beacons, timeout=4.0, grace=0.0)
    est.heard("p2")
    for _ in range(5):
        est.poll()
    assert len(reports) == 1


def test_estimator_grace_defers_first_report():
    clock, reports, beacons = StubClock(), [], []
    est = make_estimator(clock, reports, beacons, timeout=4.0, grace=2.0)
    est.poll()
    assert reports == []  # would have been a lonely singleton
    clock.now = 1.0
    est.heard("p2")
    est.poll()
    assert reports == []
    clock.now = 2.5
    est.poll()
    assert reports == [frozenset({"p1", "p2"})]


def test_estimator_defaults_scale_with_interval():
    est = ConnectivityEstimator(
        "p1", peers=lambda: [], clock=StubClock(),
        send_heartbeats=lambda: None, notify=lambda c: None,
        interval=0.2,
    )
    assert est.timeout == 0.8
    assert est.grace == est.timeout


# -- Node plumbing ------------------------------------------------------------


def test_clock_is_monotonic_and_timers_fire_against_it():
    async def scenario():
        clock = MonotonicClock(asyncio.get_event_loop())
        t0 = clock.now
        await asyncio.sleep(0.02)
        assert clock.now > t0

    run(scenario())


def test_node_publishes_address_and_counts_unroutable():
    async def scenario():
        book = {}
        node = RuntimeNode("p1", book, initial_view=make_view(["p1"]))
        await node.start()
        assert book["p1"] == ("127.0.0.1", node.port)
        node._transport_send("ghost", Data(ViewId(0, ""), "x", "p1"))
        assert node.dropped_unroutable == 1
        await node.stop()

    run(scenario())


def test_self_send_is_asynchronous_not_reentrant():
    async def scenario():
        node = RuntimeNode("p1", {}, initial_view=make_view(["p1"]))
        await node.start()
        seen = []
        node.stack.on_message = lambda src, msg: seen.append((src, msg))
        during = []
        node._transport_send("p1", "hello-self")
        during.append(list(seen))  # not yet delivered: queued on the loop
        await poll_until(lambda: seen)
        assert during == [[]]
        assert seen == [("p1", "hello-self")]
        await node.stop()

    run(scenario())


def test_timer_fires_and_cancel_works():
    async def scenario():
        node = RuntimeNode("p1", {}, initial_view=make_view(["p1"]))
        await node.start()
        fired = []
        node.stack.on_timer = fired.append
        node._set_timer(0.01, "tick")
        victim = node._set_timer(0.02, "never")
        victim.cancel()
        await poll_until(lambda: fired)
        await asyncio.sleep(0.05)
        assert fired == ["tick"]
        await node.stop()

    run(scenario())


def test_layer_exception_is_recorded_not_raised():
    async def scenario():
        book = {}
        view = make_view(["p1", "p2"])
        n1 = RuntimeNode("p1", book, initial_view=view)
        n2 = RuntimeNode("p2", book, initial_view=view)
        await n1.start()
        await n2.start()

        def explode(src, msg):
            raise RuntimeError("layer bug")

        n2.stack.on_message = explode
        n1._transport_send("p2", Data(view.id, "payload", "p1"))
        await poll_until(
            lambda: any(isinstance(e, RuntimeError) for e in n2.errors)
        )
        # The transport survived: heartbeats keep flowing.
        assert n2._estimator is not None
        await n1.stop()
        await n2.stop()

    run(scenario())


def test_two_nodes_estimate_each_other_connected():
    async def scenario():
        book = {}
        view = make_view(["p1", "p2"])
        n1 = RuntimeNode(
            "p1", book, initial_view=view, hb_interval=0.02
        )
        n2 = RuntimeNode(
            "p2", book, initial_view=view, hb_interval=0.02
        )
        await n1.start()
        await n2.start()
        await poll_until(
            lambda: n1._estimator.component() == frozenset({"p1", "p2"})
            and n2._estimator.component() == frozenset({"p1", "p2"})
        )
        await n2.stop()
        await poll_until(
            lambda: n1._estimator.component() == frozenset({"p1"})
        )
        await n1.stop()

    run(scenario())
