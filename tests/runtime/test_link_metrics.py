"""Transport loss accounting: queue drops and reconnects as metrics.

The live chaos work leans on the transport's fair-lossy semantics
(drop-oldest on a full queue, silent drop on a closed link); these
tests make that loss *visible* -- PeerLink counts overflow drops
separately from total drops and fires ``on_queue_drop``, and the node
surfaces both queue drops and reconnects as obs MetricsRegistry
counters under ``runtime.<pid>.transport.*``.
"""

import asyncio

from repro.runtime.cluster import RuntimeCluster
from repro.runtime.transport import PeerLink

WAIT = 60.0


def _idle_link(queue_limit, **kwargs):
    """A PeerLink with a live queue but no dial task: send_frame and the
    drop accounting are synchronous, so no event loop is needed."""
    link = PeerLink("a", "b", resolve=lambda: ("127.0.0.1", 1),
                    queue_limit=queue_limit, **kwargs)
    link._queue = asyncio.Queue(maxsize=queue_limit)
    return link


class TestPeerLinkQueueDrops:
    def test_overflow_drops_oldest_and_counts(self):
        drops = []
        link = _idle_link(2, on_queue_drop=drops.append)
        for frame in (b"one", b"two", b"three"):
            link.send_frame(frame)
        assert link.queue_drops == 1
        assert link.dropped == 1
        assert drops == ["b"]
        # Drop-oldest: the queue now holds the two *newest* frames.
        assert link._queue.get_nowait() == b"two"
        assert link._queue.get_nowait() == b"three"

    def test_closed_link_drop_is_not_a_queue_drop(self):
        drops = []
        link = _idle_link(2, on_queue_drop=drops.append)
        link._closed = True
        link.send_frame(b"frame")
        assert link.dropped == 1
        assert link.queue_drops == 0
        assert drops == []

    def test_queue_drops_are_a_subset_of_dropped(self):
        link = _idle_link(1)
        for i in range(5):
            link.send_frame(b"x%d" % i)
        link._closed = True
        link.send_frame(b"late")
        assert link.queue_drops == 4
        assert link.dropped == 5


class TestClusterMetrics:
    def test_queue_drops_and_reconnects_are_registered_counters(self):
        cluster = RuntimeCluster(["n1", "n2"], obs=True,
                                 hb_interval=0.05, hb_timeout=0.25)

        def dialed():
            # Formation is instant (every node boots with the full
            # initial view), so wait for the dials themselves.
            return all(
                cluster.obs.metrics.counter(
                    "runtime.{0}.transport.reconnects".format(pid)
                ).value >= 1
                for pid in ("n1", "n2")
            )

        with cluster:
            cluster.wait_formation(timeout=WAIT)
            cluster.wait_until(dialed, timeout=WAIT,
                               what="both peer links connected")
            snap = cluster.metrics_snapshot()
        for pid in ("n1", "n2"):
            base = "runtime.{0}.transport.".format(pid)
            drops = snap[base + "queue_drops"]
            assert drops["type"] == "counter"
            assert drops["value"] == 0  # a healthy run drops nothing
            connects = snap[base + "reconnects"]
            assert connects["type"] == "counter"
            assert connects["value"] >= 1  # each node dialed its peer
