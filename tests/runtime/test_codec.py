"""Wire codec round-trips: every message type, every byte boundary.

Two families of guarantees:

1. *identity* -- ``decode(encode(v)) == v`` for every encodable value,
   checked by hand-picked examples covering every registered wire type
   and by hypothesis over randomly generated values and messages;
2. *robustness* -- truncated, corrupted or hostile input raises
   :class:`~repro.runtime.codec.CodecError` (a typed, catchable error),
   never an arbitrary exception and never a crash of the reader loop.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import InfoMsg, RegisteredMsg
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.dvs.vs_to_dvs import AckMsg
from repro.gcs.messages import (
    Ack,
    Collect,
    Data,
    Install,
    Ordered,
    SafeNote,
    StateReply,
)
from repro.cb.messages import CbCast
from repro.runtime.codec import (
    MAX_FRAME,
    WIRE_TYPES,
    WIRE_VERSION,
    CodecError,
    FrameDecoder,
    Heartbeat,
    Hello,
    decode,
    decode_frame,
    encode,
    encode_frame,
)
from repro.to.summaries import Label, Summary

V1 = ViewId(1, "p1")
V2 = ViewId(2, "p2")
VIEW = View(V1, frozenset({"p1", "p2", "p3"}))
LABEL = Label(V1, 3, "p2")

#: At least one instance of every registered wire type, with payload
#: fields exercising nesting (tuples in frozensets, None, bytes...).
EXAMPLES = [
    V1,
    VIEW,
    InfoMsg(VIEW, frozenset({View(V2, frozenset({"p1"}))})),
    RegisteredMsg(),
    AckMsg(7),
    Collect(("p1", 4), frozenset({"p1", "p2"})),
    StateReply(("p1", 4), 9),
    Install(("p1", 4), VIEW),
    Data(V1, ("put", "k", "v"), "p3"),
    Ordered(V1, 12, ("del", "k"), "p2"),
    Ack(V1, 12),
    SafeNote(V2, 5),
    Summary(
        frozenset({(LABEL, ("put", "a", 1)), (Label(V2, 0, "p1"), None)}),
        (LABEL, Label(V2, 0, "p1")),
        2,
        V2,
    ),
    CbCast(V2, (("p1", 2), ("p2", 5)), ("typing", True), "p2"),
    Hello("p9"),
    Heartbeat(),
]


def test_examples_cover_every_wire_type():
    covered = {type(e) for e in EXAMPLES} | {Label}  # Label rides Summary
    assert covered >= set(WIRE_TYPES)


@pytest.mark.parametrize(
    "value", EXAMPLES, ids=lambda v: type(v).__name__
)
def test_example_round_trip(value):
    assert decode(encode(value)) == value
    assert decode_frame(encode_frame(value)) == value


def test_encoding_is_deterministic():
    one = Summary(
        frozenset({(Label(V1, i, "p1"), i) for i in range(6)}),
        (), 0, V1,
    )
    assert encode(one) == encode(one)
    # The same set built in a different insertion order encodes the same.
    other = Summary(
        frozenset({(Label(V1, i, "p1"), i) for i in reversed(range(6))}),
        (), 0, V1,
    )
    assert encode(one) == encode(other)


# -- Hypothesis: arbitrary values ---------------------------------------------

pids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-.", min_size=1,
    max_size=8,
)
viewids = st.builds(
    ViewId, st.integers(min_value=0, max_value=2**31), pids
)
views = st.builds(
    View, viewids, st.frozensets(pids, min_size=1, max_size=5)
)
labels = st.builds(
    Label, viewids, st.integers(min_value=0, max_value=1000), pids
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.tuples(children, children),
        st.lists(children, max_size=4),
        st.frozensets(
            st.one_of(st.integers(), st.text(max_size=8)), max_size=4
        ),
        st.dictionaries(
            st.one_of(st.integers(), st.text(max_size=8)),
            children,
            max_size=4,
        ),
    ),
    max_leaves=12,
)

messages = st.one_of(
    viewids,
    views,
    st.builds(InfoMsg, views, st.frozensets(views, max_size=3)),
    st.builds(RegisteredMsg),
    st.builds(AckMsg, st.integers(min_value=0)),
    st.builds(
        Collect,
        st.tuples(pids, st.integers(min_value=0)),
        st.frozensets(pids, min_size=1, max_size=5),
    ),
    st.builds(
        StateReply,
        st.tuples(pids, st.integers(min_value=0)),
        st.integers(),
    ),
    st.builds(
        Install, st.tuples(pids, st.integers(min_value=0)), views
    ),
    st.builds(Data, viewids, payloads, pids),
    st.builds(
        Ordered, viewids, st.integers(min_value=0), payloads, pids
    ),
    st.builds(Ack, viewids, st.integers(min_value=0)),
    st.builds(SafeNote, viewids, st.integers(min_value=0)),
    st.builds(
        Summary,
        st.frozensets(
            st.tuples(
                labels,
                st.one_of(
                    st.integers(), st.text(max_size=8),
                    st.tuples(st.text(max_size=4), st.integers()),
                ),
            ),
            max_size=4,
        ),
        st.lists(labels, max_size=4).map(tuple),
        st.integers(min_value=0),
        viewids,
    ),
    st.builds(Hello, pids),
    st.builds(Heartbeat),
)


@settings(max_examples=200, deadline=None)
@given(value=st.one_of(payloads, messages))
def test_round_trip_identity(value):
    assert decode(encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(st.one_of(payloads, messages), max_size=6),
    chunk=st.integers(min_value=1, max_value=7),
)
def test_frame_decoder_reassembles_any_chunking(values, chunk):
    stream = b"".join(encode_frame(v) for v in values)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), chunk):
        out.extend(decoder.feed(stream[i:i + chunk]))
    assert out == values
    assert decoder.pending == 0


# -- Robustness ---------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(data=st.binary(max_size=64))
def test_garbage_body_never_crashes(data):
    try:
        decode(data)
    except CodecError:
        pass  # the only acceptable exception


@settings(max_examples=100, deadline=None)
@given(value=messages, cut=st.integers(min_value=0, max_value=200))
def test_truncated_frame_is_typed_error(value, cut):
    frame = encode_frame(value)
    truncated = frame[: min(cut, len(frame) - 1)]
    with pytest.raises(CodecError):
        decode_frame(truncated)


@settings(max_examples=100, deadline=None)
@given(
    value=messages,
    position=st.integers(min_value=0, max_value=10**6),
    byte=st.integers(min_value=0, max_value=255),
)
def test_corrupted_frame_never_crashes(value, position, byte):
    frame = bytearray(encode_frame(value))
    position %= len(frame)
    frame[position] = byte
    decoder = FrameDecoder()
    try:
        result = decoder.feed(bytes(frame))
    except CodecError:
        return
    # A lucky corruption may still decode -- but only to a real value,
    # and never to more than the one frame that was sent.
    assert len(result) <= 1


def test_wrong_version_rejected():
    body = encode(Heartbeat())
    flipped = bytes([WIRE_VERSION + 1]) + body[1:]
    with pytest.raises(CodecError, match="wire version"):
        decode(flipped)


def test_oversized_length_prefix_rejected_before_buffering():
    header = struct.pack(">I", MAX_FRAME + 1)
    with pytest.raises(CodecError, match="exceeds"):
        FrameDecoder().feed(header)
    with pytest.raises(CodecError, match="exceeds"):
        decode_frame(header + b"x")


def test_unknown_dataclass_rejected():
    body = bytes([WIRE_VERSION]) + json.dumps(
        ["@", "OsCommand", [["s", "rm -rf /"]]]
    ).encode()
    with pytest.raises(CodecError, match="unknown type"):
        decode(body)


def test_unencodable_values_rejected():
    with pytest.raises(CodecError):
        encode(object())
    with pytest.raises(CodecError):
        encode(float("nan"))
    with pytest.raises(CodecError):
        encode(lambda: None)


def test_deep_nesting_is_typed_error():
    bomb = bytes([WIRE_VERSION]) + (
        b'["t",[' * 2000 + b'["z"]' + b"]]" * 2000
    )
    with pytest.raises(CodecError):
        decode(bomb)


def test_trailing_bytes_rejected_strict():
    frame = encode_frame(Heartbeat())
    with pytest.raises(CodecError, match="trailing"):
        decode_frame(frame + b"\x00")


def test_pinned_schema_matches_the_dataclasses():
    """The WIRE_SCHEMA pin (which `repro lint` checks statically as
    DVS015) agrees with the live dataclass definitions."""
    from repro.runtime.codec import WIRE_SCHEMA, schema_drift

    assert schema_drift() == []
    assert set(WIRE_SCHEMA) == {cls.__name__ for cls in WIRE_TYPES}
