"""Unit tests for the live fault interposer (FaultNet).

FaultNet reuses the simulator's LinkFault models unchanged; these tests
pin the transport-boundary semantics: blocking is symmetric for
partitions and directed for one-way blocks, ``outbound`` is ``None``
on the fast path, ``[]`` on a drop, and FIFO channel clocks keep
delayed copies of one directed pair in order.
"""

from repro.faults.models import (
    DelayFault,
    DropFault,
    DuplicateFault,
    OneWayBlock,
)
from repro.faults.nemesis import FaultOp, NemesisPlan
from repro.runtime.faultnet import FaultNet, LiveNemesis


class TestPartition:
    def test_unpartitioned_blocks_nothing(self):
        net = FaultNet()
        assert not net.blocked("a", "b")

    def test_partition_blocks_across_and_not_within(self):
        net = FaultNet()
        net.partition([{"a", "b"}, {"c"}])
        assert not net.blocked("a", "b")
        assert not net.blocked("b", "a")
        assert net.blocked("a", "c")
        assert net.blocked("c", "a")

    def test_unlisted_processes_share_component_zero(self):
        net = FaultNet()
        net.partition([{"a"}])
        # "a" is component 0; anything unlisted also lands in 0.
        assert not net.blocked("a", "z")
        net.partition([{"x"}, {"a"}])
        assert net.blocked("a", "z")

    def test_heal_restores_full_connectivity(self):
        net = FaultNet()
        net.partition([{"a"}, {"b"}])
        assert net.blocked("a", "b")
        net.heal()
        assert not net.blocked("a", "b")

    def test_oneway_block_is_directed(self):
        net = FaultNet()
        fault = net.install_fault(OneWayBlock([("a", "b")]))
        assert net.blocked("a", "b")
        assert not net.blocked("b", "a")
        net.remove_fault(fault)
        assert not net.blocked("a", "b")


class TestOutbound:
    def test_no_matching_fault_is_fast_path(self):
        net = FaultNet()
        assert net.outbound("a", "b", 0.0) is None
        net.install_fault(DropFault(1.0, links=[("x", "y")]))
        assert net.outbound("a", "b", 0.0) is None

    def test_certain_drop_returns_empty(self):
        net = FaultNet()
        net.install_fault(DropFault(1.0))
        assert net.outbound("a", "b", 0.0) == []
        assert net.injected_drops == 1

    def test_lossless_fault_returns_one_copy_now(self):
        net = FaultNet()
        net.install_fault(DropFault(0.0))
        assert net.outbound("a", "b", 0.0) == [0.0]

    def test_duplicate_adds_copies(self):
        net = FaultNet(seed=1)
        net.install_fault(DuplicateFault(1.0, spread=0.5))
        delays = net.outbound("a", "b", 0.0)
        assert len(delays) == 2
        assert net.injected_copies == 1

    def test_delay_jitter_is_seed_deterministic(self):
        one = FaultNet(seed=7)
        two = FaultNet(seed=7)
        for net in (one, two):
            net.install_fault(DelayFault(jitter=0.2, spike_prob=0.5,
                                         spike=1.0))
        a = [one.outbound("a", "b", float(i)) for i in range(20)]
        b = [two.outbound("a", "b", float(i)) for i in range(20)]
        assert a == b

    def test_fifo_channel_clock_never_reorders_a_pair(self):
        net = FaultNet(seed=3)
        net.install_fault(DelayFault(jitter=0.5))
        last_at = 0.0
        for i in range(50):
            now = i * 0.01  # sends come faster than the jitter spread
            (delay,) = net.outbound("a", "b", now)
            at = now + delay
            assert at >= last_at
            last_at = at

    def test_fifo_clocks_are_per_directed_pair(self):
        net = FaultNet(seed=3)
        net.install_fault(DelayFault(jitter=5.0, links=[("a", "b")]))
        net.install_fault(DelayFault(jitter=0.0, links=[("b", "a")]))
        net.outbound("a", "b", 0.0)  # winds a->b's clock far forward
        (delay,) = net.outbound("b", "a", 0.0)
        assert delay == 0.0

    def test_fifo_false_returns_raw_jitter(self):
        net = FaultNet(seed=3, fifo=False)
        net.install_fault(DelayFault(jitter=0.5))
        delays = [net.outbound("a", "b", 0.0)[0] for _ in range(20)]
        # Without the channel clock, later sends may land earlier.
        assert sorted(delays) != delays


class _FakeClock:
    def __init__(self):
        self.now = 0.0


class _FakeCluster:
    """The slice of RuntimeCluster that LiveNemesis touches."""

    def __init__(self, faultnet):
        self.faultnet = faultnet
        self.clock = _FakeClock()
        self.killed = []
        self.revived = []
        self.noted = []

    async def nemesis_kill(self, pid):
        self.killed.append(pid)

    async def nemesis_revive(self, pid):
        self.revived.append(pid)

    def note_nemesis(self, op):
        self.noted.append(op)


class TestLiveNemesis:
    def test_arm_schedules_every_op(self):
        import asyncio

        plan = NemesisPlan([
            FaultOp(0.0, "partition", ((("a",), ("b",)),)),
            FaultOp(0.01, "drop", (None, 1.0, 0.1)),
            FaultOp(0.02, "crash", ("b",)),
            FaultOp(0.03, "recover", ("b",)),
            FaultOp(0.06, "heal"),
        ])
        faultnet = FaultNet()
        cluster = _FakeCluster(faultnet)
        nemesis = LiveNemesis(plan, faultnet=faultnet)

        async def run():
            nemesis.arm(cluster)
            await asyncio.sleep(0.08)  # inside the 0.01..0.11 drop window
            mid_drop = faultnet.outbound("a", "z", 0.0)
            await asyncio.sleep(0.15)
            return mid_drop

        mid_drop = asyncio.run(run())
        assert mid_drop == []  # the drop window was live mid-run
        assert len(nemesis.applied) == 5
        assert cluster.killed == ["b"]
        assert cluster.revived == ["b"]
        assert len(cluster.noted) == 5
        assert not faultnet.blocked("a", "b")  # healed
        assert faultnet.faults == []  # window expired

    def test_plan_coercion_from_op_list(self):
        nemesis = LiveNemesis([(1.0, "heal", ())])
        assert isinstance(nemesis.plan, NemesisPlan)
        assert nemesis.plan.ops[0].kind == "heal"
