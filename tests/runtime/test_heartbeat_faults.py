"""ConnectivityEstimator under asymmetric loss and sustained jitter.

Satellite coverage for the live chaos work: the estimator is the one
component that turns lossy-wire symptoms into connectivity upcalls, so
these tests pin down that (a) a one-way block darkens exactly the
starved direction, and (b) jitter that keeps inter-arrival gaps under
the timeout never causes suspicion flapping -- in particular not within
the grace period, where no report may fire at all.

Driven synchronously with a fake clock (no event loop): ``poll`` *is*
the tick, which makes the timing exact.
"""

import itertools
import random

from repro.runtime.heartbeat import ConnectivityEstimator


class _Clock:
    def __init__(self):
        self.now = 0.0


def _estimator(pid, others, clock, interval=0.05, timeout=0.2, grace=0.2):
    notifications = []
    est = ConnectivityEstimator(
        pid,
        peers=lambda: list(others),
        clock=clock,
        send_heartbeats=lambda: None,
        notify=notifications.append,
        interval=interval,
        timeout=timeout,
        grace=grace,
    )
    return est, notifications


class TestAsymmetricLoss:
    def test_one_way_loss_darkens_only_the_starved_side(self):
        # a->b traffic flows; b->a is blocked.  a stops hearing b and
        # drops it; b keeps hearing a and keeps it.
        clock = _Clock()
        a, a_notes = _estimator("a", ["b"], clock)
        b, b_notes = _estimator("b", ["a"], clock)
        for tick in range(20):
            clock.now = tick * 0.05
            b.heard("a")  # a->b direction delivers
            # b->a direction is blocked: a.heard("b") never fires
            a.poll()
            b.poll()
        assert a_notes[-1] == frozenset({"a"})
        assert b_notes[-1] == frozenset({"a", "b"})

    def test_recovery_after_block_lifts(self):
        clock = _Clock()
        a, a_notes = _estimator("a", ["b"], clock)
        for tick in range(20):  # blocked: silence from b
            clock.now = tick * 0.05
            a.poll()
        assert a_notes[-1] == frozenset({"a"})
        for tick in range(20, 30):  # healed: traffic resumes
            clock.now = tick * 0.05
            a.heard("b")
            a.poll()
        assert a_notes[-1] == frozenset({"a", "b"})

    def test_never_heard_peer_is_never_alive(self):
        clock = _Clock()
        a, _ = _estimator("a", ["b", "c"], clock)
        a.heard("b")
        assert a.component() == frozenset({"a", "b"})


class TestJitterStability:
    def test_no_report_at_all_within_grace(self):
        clock = _Clock()
        a, a_notes = _estimator("a", ["b"], clock, timeout=0.2, grace=0.5)
        rng = random.Random(42)
        t = 0.0
        while t < 0.45:
            a.heard("b")
            a.poll()
            t += 0.05 + rng.uniform(0.0, 0.03)  # jittered ticks
            clock.now = t
        assert a_notes == []

    def test_sustained_jitter_below_timeout_never_flaps(self):
        # Heartbeats arrive with heavy jitter, but every inter-arrival
        # gap stays under the timeout: after the first full report the
        # estimate must never change.
        clock = _Clock()
        a, a_notes = _estimator("a", ["b", "c"], clock,
                                interval=0.05, timeout=0.25, grace=0.25)
        rng = random.Random(7)
        heard_at = {"b": 0.0, "c": 0.0}
        next_hb = {"b": 0.0, "c": 0.0}
        for tick in itertools.count():
            clock.now = tick * 0.05
            if clock.now > 10.0:
                break
            for peer in ("b", "c"):
                if clock.now >= next_hb[peer]:
                    a.heard(peer)
                    heard_at[peer] = clock.now
                    # Jittered arrival: gap in [0.05, 0.24] < timeout.
                    next_hb[peer] = clock.now + 0.05 + rng.uniform(0.0, 0.19)
            a.poll()
        assert a_notes == [frozenset({"a", "b", "c"})]

    def test_gap_beyond_timeout_is_one_clean_transition(self):
        # One long stall (> timeout) then recovery: exactly two extra
        # reports (down, up) -- no flapping around the edges.
        clock = _Clock()
        a, a_notes = _estimator("a", ["b"], clock,
                                interval=0.05, timeout=0.2, grace=0.2)
        for tick in range(100):
            clock.now = tick * 0.05
            stalled = 2.0 <= clock.now < 3.0
            if not stalled:
                a.heard("b")
            a.poll()
        assert a_notes == [
            frozenset({"a", "b"}),
            frozenset({"a"}),
            frozenset({"a", "b"}),
        ]
