"""Regression tests for the runtime hot-path fixes.

Each test pins one specific bug:

1. reconnect storm -- a crash-looping peer must see a *bounded* dial
   rate (backoff may not reset on a connect that dies young);
2. deprecated ``asyncio.get_event_loop()`` inside coroutines;
3. broadcast fan-out re-encoding the identical frame once per link;
4. ``except (CancelledError, Exception)`` swallowing real teardown
   errors (the second arm was dead: CancelledError isn't an Exception);
5. the heartbeat estimator never pruning ``_last_heard`` evidence for
   peers removed from the address book;
6. ``LiveNemesis`` dropping its crash/recover task references, so a
   failed kill/revive was silently swallowed by the loop;
7. the node's error buffer growing without bound (every received frame
   can append to it);
8. inbound frames dispatched without validation: unknown senders fed
   the connectivity estimator and forged payloads reached the stack.
"""

import asyncio
import pathlib
import warnings

import pytest

import repro.runtime
import repro.runtime.node
from repro.core.viewids import ViewId
from repro.core.views import View
from repro.runtime.codec import Heartbeat, Hello
from repro.runtime.faultnet import FaultNet, LiveNemesis
from repro.runtime.heartbeat import ConnectivityEstimator
from repro.runtime.node import ERROR_LIMIT, RuntimeNode
from repro.runtime.transport import PeerLink


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, 30.0))


class StubClock:
    def __init__(self, now=0.0):
        self.now = now


# -- 1. reconnect storm ------------------------------------------------------


def test_backoff_keeps_growing_against_a_crash_looping_peer():
    """An accept-then-die peer used to reset the backoff on every
    successful connect, turning the link into a tight redial loop."""

    async def scenario():
        accepts = []

        async def slam(reader, writer):
            accepts.append(1)
            writer.close()

        server = await asyncio.start_server(slam, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", port),
            retry_min=0.02, retry_max=0.2,
        ).start()

        async def pump():
            # Keep frames flowing so a dead connection is noticed at
            # the next write instead of blocking on an empty queue.
            while True:
                link.send(("tick", len(accepts)))
                await asyncio.sleep(0.005)

        pump_task = asyncio.ensure_future(pump())
        await asyncio.sleep(0.9)
        pump_task.cancel()
        connects = link.connects
        await link.close()
        server.close()
        await server.wait_closed()
        # Zero-jitter minimum backoff schedule within 0.9s:
        # 0.02+0.04+0.08+0.16+0.2+0.2+0.2 -- at most ~8 dials.  The
        # pre-fix reset-on-connect behaviour redials every ~0.02-0.04s
        # (25+ dials); anything near that is the storm coming back.
        assert 1 <= connects <= 10, connects

    run(scenario())


def test_backoff_resets_after_a_stable_connection():
    """The flip side: a connection that *survives* ``stable_after``
    returns the link to fast retries, so a genuinely recovered peer is
    not punished with ``retry_max`` delays on the next blip."""

    async def scenario():
        frames = []

        async def accept(reader, writer):
            try:
                while await reader.read(1 << 16):
                    frames.append(1)
            finally:
                writer.close()

        server = await asyncio.start_server(accept, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", port),
            retry_min=0.02, retry_max=0.2, stable_after=0.05,
        ).start()
        link.send(("warm", 0))
        await asyncio.sleep(0.2)  # well past stable_after
        assert link.connects == 1
        await link.close()
        server.close()
        await server.wait_closed()

    run(scenario())


# -- 2. get_event_loop deprecation -------------------------------------------


def test_runtime_package_never_calls_get_event_loop():
    """``asyncio.get_event_loop()`` inside a coroutine is deprecated
    (and wrong once loops stop being auto-created): the runtime package
    must use ``get_running_loop()``."""
    package_dir = pathlib.Path(repro.runtime.__file__).parent
    offenders = [
        path.name
        for path in sorted(package_dir.glob("*.py"))
        if "get_event_loop" in path.read_text(encoding="utf-8")
    ]
    assert offenders == []


def test_node_start_emits_no_deprecation_warnings():
    async def scenario():
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            book = {}
            view = View(ViewId(0, ""), frozenset(["a"]))
            node = RuntimeNode("a", book, initial_view=view)
            await node.start()
            await node.stop()

    run(scenario())


# -- 3. encode-once broadcast fan-out ----------------------------------------


@pytest.fixture
def counted_codec(monkeypatch):
    calls = []
    real = repro.runtime.node.encode_frame

    def counting(envelope):
        calls.append(envelope)
        return real(envelope)

    monkeypatch.setattr(repro.runtime.node, "encode_frame", counting)
    return calls


def test_broadcast_encodes_the_frame_once_for_all_peers(counted_codec):
    async def scenario():
        pids = ["a", "b", "c", "d"]
        view = View(ViewId(0, ""), frozenset(pids))
        book = {}
        node = RuntimeNode("a", book, initial_view=view)
        await node.start()
        # Dead-end peer entries: links queue while dialing fails, which
        # is all the encode path needs.
        for peer in ["b", "c", "d"]:
            book[peer] = ("127.0.0.1", 1)
        counted_codec.clear()
        node._transport_broadcast(pids, ("payload", 42))
        fanout = [e for e in counted_codec if e[1] == ("payload", 42)]
        assert len(fanout) == 1  # one encode for b, c, d (self is local)
        counted_codec.clear()
        node._send_heartbeats()
        assert len(counted_codec) == 1  # one beacon encode per round
        await node.stop()

    run(scenario())


def test_unicast_send_still_encodes_per_message(counted_codec):
    async def scenario():
        view = View(ViewId(0, ""), frozenset(["a", "b"]))
        book = {"b": ("127.0.0.1", 1)}
        node = RuntimeNode("a", book, initial_view=view)
        await node.start()
        counted_codec.clear()
        node._transport_send("b", ("one", 1))
        node._transport_send("b", ("two", 2))
        assert len(counted_codec) == 2
        await node.stop()

    run(scenario())


# -- 4. CancelledError vs Exception in teardown ------------------------------


def _task_raising_on_cancel():
    async def victim():
        try:
            await asyncio.sleep(60)
        except asyncio.CancelledError:
            raise RuntimeError("teardown bug")

    return asyncio.ensure_future(victim())


def test_link_close_routes_teardown_errors_to_on_error():
    async def scenario():
        errors = []
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", 1),
            on_error=errors.append,
        )
        link._task = _task_raising_on_cancel()
        await asyncio.sleep(0)
        await link.close()
        assert [type(e) for e in errors] == [RuntimeError]

    run(scenario())


def test_link_close_raises_without_an_error_sink():
    async def scenario():
        link = PeerLink("a", "b", resolve=lambda: ("127.0.0.1", 1))
        link._task = _task_raising_on_cancel()
        await asyncio.sleep(0)
        # Pre-fix, `except (CancelledError, Exception)` silently ate
        # this; a real teardown error must surface somewhere.
        with pytest.raises(RuntimeError):
            await link.close()

    run(scenario())


def test_estimator_stop_routes_teardown_errors_to_on_error():
    async def scenario():
        errors = []
        est = ConnectivityEstimator(
            "a", peers=lambda: [], clock=StubClock(),
            send_heartbeats=lambda: None, notify=lambda c: None,
            on_error=errors.append,
        )
        est._task = _task_raising_on_cancel()
        await asyncio.sleep(0)
        await est.stop()
        assert [type(e) for e in errors] == [RuntimeError]

    run(scenario())


def test_cancelled_teardown_stays_silent():
    async def scenario():
        errors = []
        link = PeerLink(
            "a", "b", resolve=lambda: ("127.0.0.1", 1),
            on_error=errors.append,
        ).start()
        await link.close()  # plain cancellation: not an error
        assert errors == []

    run(scenario())


# -- 5. heartbeat evidence pruning -------------------------------------------


def test_estimator_prunes_evidence_for_removed_peers():
    clock = StubClock()
    book = ["b", "c"]
    reports = []
    est = ConnectivityEstimator(
        "a", peers=lambda: list(book), clock=clock,
        send_heartbeats=lambda: None, notify=reports.append,
        interval=0.05, timeout=0.2, grace=0.0,
    )
    est.heard("b")
    est.heard("c")
    assert est.poll() == frozenset(["a", "b", "c"])

    # The book shrinks: evidence for the removed peer must go with it.
    book.remove("b")
    clock.now = 0.1
    assert est.poll() == frozenset(["a", "c"])
    assert "b" not in est._last_heard

    # Re-adding the peer inside the old horizon must NOT resurrect it
    # from stale timestamps: it has to prove itself alive again.
    book.append("b")
    clock.now = 0.15
    assert est.poll() == frozenset(["a", "c"])
    est.heard("b")
    assert est.poll() == frozenset(["a", "b", "c"])
    assert reports[-1] == frozenset(["a", "b", "c"])


def test_estimator_evidence_map_stays_bounded_over_churn():
    clock = StubClock()
    book = []
    est = ConnectivityEstimator(
        "a", peers=lambda: list(book), clock=clock,
        send_heartbeats=lambda: None, notify=lambda c: None,
        grace=0.0,
    )
    for generation in range(50):
        peer = "peer-{0}".format(generation)
        book[:] = [peer]
        est.heard(peer)
        clock.now += 1.0
        est.poll()
    # Pre-fix this held all 50 dead generations forever.
    assert set(est._last_heard) == {"peer-49"}

# -- 6. nemesis task references ----------------------------------------------


def test_nemesis_crash_failures_are_captured_not_lost():
    """``_apply`` used to drop the ``ensure_future`` result: a failing
    kill/revive was garbage-collected with its exception unobserved."""

    class _Cluster:
        def __init__(self):
            self.faultnet = FaultNet()
            self.clock = StubClock()
            self.noted = []

        def note_nemesis(self, op):
            self.noted.append(op)

        async def nemesis_kill(self, pid):
            raise RuntimeError("kill failed: " + pid)

    async def scenario():
        nemesis = LiveNemesis([(0.0, "crash", ("p1",))])
        nemesis.arm(_Cluster())
        await asyncio.sleep(0.05)
        assert [type(e) for e in nemesis.errors] == [RuntimeError]
        assert nemesis.tasks == set()  # reaped after completion

    run(scenario())


# -- 7. bounded error buffer -------------------------------------------------


def test_node_error_buffer_is_bounded():
    """Every received frame can append to ``errors``; a hostile peer
    must not be able to grow it forever.  Newest entries win."""
    view = View(ViewId(0, ""), frozenset(["a"]))
    node = RuntimeNode("a", {}, initial_view=view)
    overflow = ERROR_LIMIT + 100
    for index in range(overflow):
        node.errors.append(RuntimeError(str(index)))
    assert len(node.errors) == ERROR_LIMIT
    assert str(node.errors[-1]) == str(overflow - 1)


# -- 8. inbound frame validation ---------------------------------------------


def test_forged_and_unknown_frames_are_dropped_before_dispatch():
    async def scenario():
        view = View(ViewId(0, ""), frozenset(["a", "b"]))
        book = {}
        node = RuntimeNode("a", book, initial_view=view)
        await node.start()
        book["b"] = ("127.0.0.1", 1)

        # Unknown sender: never reaches the estimator.
        node._on_frame("evil", Heartbeat())
        assert node.dropped_invalid == 1
        assert "evil" not in node._estimator._last_heard

        # Known sender, forged payload (pid must be a str).
        node._on_frame("b", Hello(pid=7))
        assert node.dropped_invalid == 2
        assert "b" not in node._estimator._last_heard

        # A well-formed frame from a known peer still lands.
        node._on_frame("b", Heartbeat())
        assert node.dropped_invalid == 2
        assert "b" in node._estimator._last_heard
        assert node.stats()["dropped_invalid"] == 2
        await node.stop()

    run(scenario())
