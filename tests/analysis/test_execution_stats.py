"""Unit tests for execution statistics."""

import pytest

from repro.analysis import (
    action_mix,
    delivery_completeness,
    delivery_latencies,
    summarize_trace,
    view_lifecycles,
)
from repro.core import make_view
from repro.ioa import act


class TestTraceStats:
    def _trace(self, v0, v1):
        return [
            act("dvs_gpsnd", "m", "p1"),
            act("dvs_gprcv", "m", "p1", "p2"),
            act("dvs_newview", v1, "p1"),
            act("dvs_newview", v1, "p2"),
            act("dvs_register", "p1"),
            act("dvs_register", "p2"),
            act("dvs_gprcv", "m2", "p1", "p1"),
        ]

    def test_action_mix(self, ):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        mix = action_mix(self._trace(v0, v1))
        assert mix["dvs_gprcv"] == 2
        assert mix["dvs_newview"] == 2

    def test_view_lifecycles(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        lifecycles = view_lifecycles(self._trace(v0, v1), v0)
        assert lifecycles[v0].deliveries == 1
        assert lifecycles[v1].deliveries == 1
        assert lifecycles[v1].totally_attempted
        assert lifecycles[v1].totally_registered
        assert lifecycles[v0].totally_registered  # initial view

    def test_summarize(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        stats = summarize_trace(self._trace(v0, v1), v0)
        assert stats.views_reported == 2
        assert stats.views_totally_registered == 2
        assert stats.deliveries == 2
        rows = dict((r[0], r[1]) for r in stats.rows())
        assert rows["client deliveries"] == 2

    def test_partial_registration(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        trace = [
            act("dvs_newview", v1, "p1"),
            act("dvs_register", "p1"),
        ]
        lifecycles = view_lifecycles(trace, v0)
        assert not lifecycles[v1].totally_attempted
        assert not lifecycles[v1].totally_registered


class TestClusterStats:
    def test_latencies_and_completeness(self):
        from repro.gcs.cluster import Cluster

        c = Cluster(list("abc"), seed=2).start()
        c.settle(max_time=60)
        c.bcast("a", "x1")
        c.bcast("b", "x2")
        c.settle(max_time=300)
        latencies = delivery_latencies(c)
        # two payloads x three receivers
        assert len(latencies) == 6
        assert all(lat > 0 for _, _, lat in latencies)
        assert delivery_completeness(c) == 1.0

    def test_completeness_partial_during_partition(self):
        from repro.gcs.cluster import Cluster

        c = Cluster(list("abcde"), seed=3).start()
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d", "e"})
        c.settle(max_time=60)
        c.bcast("a", "only-majority")
        c.settle(max_time=300)
        assert 0 < delivery_completeness(c) < 1.0
