"""Unit tests for the parameter sweeps."""

import pytest

from repro.analysis import (
    ascii_series,
    crossover_point,
    sweep_drift_rate,
    sweep_register_lag,
)
from repro.analysis.sweeps import SweepPoint

UNIVERSE = ["p{0}".format(i) for i in range(1, 6)]


class TestDriftSweep:
    def test_point_per_parameter(self):
        points = sweep_drift_rate(
            UNIVERSE, [0.0, 0.02], steps=80, repeats=1
        )
        assert [p.parameter for p in points] == [0.0, 0.02]
        assert all(0 <= p.static <= 1 for p in points)
        assert all(0 <= p.dynamic <= 1 for p in points)

    def test_zero_drift_rules_agree(self):
        (point,) = sweep_drift_rate(UNIVERSE, [0.0], steps=150, repeats=2)
        assert abs(point.static - point.dynamic) < 0.15

    def test_heavy_drift_starves_static(self):
        (point,) = sweep_drift_rate(UNIVERSE, [0.05], steps=200, repeats=2)
        assert point.dynamic > point.static


class TestLagSweep:
    def test_static_is_lag_independent(self):
        points = sweep_register_lag(UNIVERSE, [0, 3], steps=100, repeats=1)
        assert points[0].static == points[1].static

    def test_lag_never_helps(self):
        points = sweep_register_lag(
            UNIVERSE, [0, 2, 4], steps=150, repeats=2
        )
        dynamics = [p.dynamic for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(dynamics, dynamics[1:]))


class TestHelpers:
    def test_crossover_detection(self):
        points = [
            SweepPoint(0.0, static=0.9, dynamic=0.8),
            SweepPoint(0.1, static=0.5, dynamic=0.7),
        ]
        assert crossover_point(points) == 0.1

    def test_no_crossover(self):
        points = [SweepPoint(0.0, static=0.9, dynamic=0.8)]
        assert crossover_point(points) is None

    def test_ascii_series_renders(self):
        points = [SweepPoint(0.5, static=0.25, dynamic=0.75)]
        art = ascii_series(points, width=8)
        assert "S|" in art and "D|" in art
        assert "0.25" in art and "0.75" in art
