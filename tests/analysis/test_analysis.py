"""Unit tests for scenarios, availability metrics and reporting."""

import pytest

from repro.analysis import (
    compare_trackers,
    drifting_population,
    random_churn,
    render_table,
    run_tracker,
    split_merge_cycle,
)
from repro.core import make_view
from repro.membership import DynamicVotingTracker, StaticMajorityTracker

FIVE = ["p1", "p2", "p3", "p4", "p5"]


class TestScenarios:
    def test_random_churn_partitions_alive_set(self):
        for config in random_churn(FIVE, 50, seed=1):
            members = [p for group in config for p in group]
            assert sorted(members) == FIVE
            assert all(group for group in config)

    def test_random_churn_deterministic(self):
        assert random_churn(FIVE, 30, seed=9) == random_churn(FIVE, 30, seed=9)

    def test_drifting_population_changes_membership(self):
        scenario = drifting_population(
            FIVE, 400, seed=3, leave_prob=0.05, join_prob=0.05
        )
        first = {p for g in scenario[0] for p in g}
        last = {p for g in scenario[-1] for p in g}
        assert first != last

    def test_drifting_population_respects_min_alive(self):
        scenario = drifting_population(
            FIVE, 300, seed=4, leave_prob=0.5, join_prob=0.0, min_alive=3
        )
        for config in scenario:
            assert sum(len(g) for g in config) >= 3

    def test_split_merge_cycle_shape(self):
        scenario = split_merge_cycle(FIVE, cycles=2)
        assert len(scenario) == 4
        assert len(scenario[0]) == 2
        assert scenario[1] == [frozenset(FIVE)]

    def test_split_merge_custom_splits(self):
        scenario = split_merge_cycle(FIVE, 1, splits=[["p1"], ["p2", "p3"]])
        assert frozenset({"p1"}) in scenario[0]


class TestAvailability:
    def test_run_tracker_counts(self):
        v0 = make_view(0, FIVE)
        scenario = split_merge_cycle(FIVE, cycles=3)
        result = run_tracker("static", StaticMajorityTracker(v0), scenario)
        assert result.steps == 6
        # Merge steps always have a majority; 3/2 splits give one too.
        assert result.steps_with_primary == 6
        assert result.availability == 1.0

    def test_compare_runs_same_scenario(self):
        v0 = make_view(0, FIVE)
        scenario = random_churn(FIVE, 100, seed=6)
        results = compare_trackers(
            [
                ("static", StaticMajorityTracker(v0)),
                ("dynamic", DynamicVotingTracker(v0)),
            ],
            scenario,
        )
        assert [r.name for r in results] == ["static", "dynamic"]
        assert all(0 <= r.availability <= 1 for r in results)

    def test_e6_shape_static_collapses_under_drift(self):
        """The headline E6 claim: availability of static majorities
        collapses when the population drifts; dynamic voting keeps
        tracking it."""
        v0 = make_view(0, FIVE)
        scenario = drifting_population(
            FIVE, 500, seed=5, leave_prob=0.02, join_prob=0.015
        )
        results = compare_trackers(
            [
                ("static", StaticMajorityTracker(v0)),
                ("dynamic", DynamicVotingTracker(v0)),
            ],
            scenario,
        )
        static, dynamic = results
        assert dynamic.availability > 0.6
        assert static.availability < 0.3
        assert dynamic.availability > static.availability * 2

    def test_e6_shape_fixed_population_comparable(self):
        v0 = make_view(0, FIVE)
        scenario = random_churn(FIVE, 500, seed=7, partition_prob=0.5)
        static, dynamic = compare_trackers(
            [
                ("static", StaticMajorityTracker(v0)),
                ("dynamic", DynamicVotingTracker(v0)),
            ],
            scenario,
        )
        assert abs(static.availability - dynamic.availability) < 0.2


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["rule", "avail"], [["static", "0.1"], ["dynamic", "0.9"]],
            title="E6",
        )
        lines = table.splitlines()
        assert lines[0] == "E6"
        assert "rule" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_render_table_handles_non_strings(self):
        table = render_table(["n"], [[1], [22]])
        assert "22" in table
