"""End-to-end tests for the replicated key-value store."""

import pytest

from repro.apps import KvStoreCluster


class TestStableCluster:
    def test_puts_replicate_everywhere(self):
        kv = KvStoreCluster(list("abc"), seed=1).start()
        kv.settle(max_time=60)
        kv.replica("a").put("x", 1)
        kv.replica("b").put("y", 2)
        kv.settle(max_time=200)
        for pid in "abc":
            assert kv.replica(pid).snapshot() == {"x": 1, "y": 2}
        assert kv.consistent()

    def test_delete(self):
        kv = KvStoreCluster(list("abc"), seed=2).start()
        kv.settle(max_time=60)
        kv.replica("a").put("x", 1)
        kv.settle(max_time=100)
        kv.replica("b").delete("x")
        kv.settle(max_time=100)
        for pid in "abc":
            assert kv.replica(pid).get("x") is None

    def test_same_key_last_writer_in_total_order_wins(self):
        kv = KvStoreCluster(list("abc"), seed=3).start()
        kv.settle(max_time=60)
        kv.replica("a").put("k", "from-a")
        kv.replica("b").put("k", "from-b")
        kv.settle(max_time=200)
        values = {kv.replica(p).get("k") for p in "abc"}
        assert len(values) == 1  # everyone agrees, whichever won

    def test_local_read_default(self):
        kv = KvStoreCluster(list("abc"), seed=4).start()
        assert kv.replica("a").get("missing", default=0) == 0


class TestPartitionedCluster:
    def test_minority_write_stalls_then_applies(self):
        kv = KvStoreCluster(list("abcde"), seed=5).start()
        kv.settle(max_time=60)
        kv.partition({"a", "b", "c"}, {"d", "e"})
        kv.settle(max_time=60)
        kv.replica("d").put("z", 9)
        kv.settle(max_time=200)
        assert kv.replica("d").get("z") is None
        kv.heal()
        kv.settle(max_time=400)
        for pid in "abcde":
            assert kv.replica(pid).get("z") == 9
        assert kv.consistent()

    def test_majority_side_stays_live(self):
        kv = KvStoreCluster(list("abcde"), seed=6).start()
        kv.settle(max_time=60)
        kv.partition({"a", "b", "c"}, {"d", "e"})
        kv.settle(max_time=60)
        kv.replica("a").put("x", 1)
        kv.settle(max_time=200)
        assert kv.replica("b").get("x") == 1
        assert kv.replica("c").get("x") == 1
        assert kv.replica("d").get("x") is None

    def test_stale_reads_are_prefixes_not_forks(self):
        kv = KvStoreCluster(list("abcde"), seed=7).start()
        kv.settle(max_time=60)
        kv.replica("a").put("x", 1)
        kv.settle(max_time=100)
        kv.partition({"a", "b", "c"}, {"d", "e"})
        kv.settle(max_time=60)
        kv.replica("a").put("x", 2)
        kv.settle(max_time=200)
        # The minority lags at x=1, which is a prefix state, not a fork.
        assert kv.replica("d").get("x") == 1
        assert kv.consistent()
        kv.heal()
        kv.settle(max_time=400)
        assert kv.replica("d").get("x") == 2
