"""Tests for the replicated load balancer."""

import pytest

from repro.apps.load_balancer import LoadBalancedCluster


class TestStableDispatch:
    def test_round_robin_over_primary(self):
        lb = LoadBalancedCluster(list("abc"), seed=1).start()
        lb.settle(max_time=60)
        for i in range(6):
            lb.submit("a", "t{0}".format(i))
        lb.settle(max_time=400)
        assert lb.agreed()
        load = lb.load()
        assert sum(load.values()) == 6
        assert all(count == 2 for count in load.values())

    def test_all_nodes_agree_on_every_assignment(self):
        lb = LoadBalancedCluster(list("abcd"), seed=2).start()
        lb.settle(max_time=60)
        for i, pid in enumerate("abcd"):
            lb.submit(pid, "task-{0}".format(i))
        lb.settle(max_time=400)
        assignments = [
            lb.balancer(pid).assignments for pid in lb.cluster.processes
        ]
        assert all(a == assignments[0] for a in assignments)

    def test_my_tasks_matches_assignments(self):
        lb = LoadBalancedCluster(list("abc"), seed=3).start()
        lb.settle(max_time=60)
        for i in range(5):
            lb.submit("b", "t{0}".format(i))
        lb.settle(max_time=400)
        for pid in "abc":
            balancer = lb.balancer(pid)
            mine = [
                t for t, w in balancer.assignments.items() if w == pid
            ]
            assert sorted(mine) == sorted(balancer.my_tasks)


class TestPartitionedDispatch:
    def test_partition_tasks_go_to_primary_members(self):
        lb = LoadBalancedCluster(list("abcde"), seed=4).start()
        lb.settle(max_time=60)
        lb.partition({"a", "b", "c"}, {"d", "e"})
        lb.settle(max_time=80)
        for i in range(6):
            lb.submit("a", "pt{0}".format(i))
        lb.settle(max_time=400)
        # Assigned within the 3-member primary only.
        workers = set(lb.balancer("a").assignments.values())
        assert workers <= {"a", "b", "c"}
        assert lb.agreed()

    def test_minority_submission_dispatches_after_heal(self):
        lb = LoadBalancedCluster(list("abcde"), seed=5).start()
        lb.settle(max_time=60)
        lb.partition({"a", "b", "c"}, {"d", "e"})
        lb.settle(max_time=80)
        lb.submit("d", "queued-task")
        lb.settle(max_time=200)
        assert "queued-task" not in lb.balancer("d").assignments
        lb.heal()
        lb.settle(max_time=500)
        assert "queued-task" in lb.balancer("d").assignments
        assert lb.agreed()

    def test_lagging_node_reaches_same_assignments(self):
        lb = LoadBalancedCluster(list("abcde"), seed=6).start()
        lb.settle(max_time=60)
        lb.partition({"a", "b", "c"}, {"d", "e"})
        lb.settle(max_time=80)
        for i in range(4):
            lb.submit("b", "w{0}".format(i))
        lb.settle(max_time=300)
        lb.heal()
        lb.settle(max_time=600)
        assert (
            lb.balancer("d").assignments == lb.balancer("a").assignments
        )
