"""Unit tests for the generic replicated state machine."""

import pytest

from repro.apps import ReplicatedStateMachine, StateMachine
from repro.gcs.cluster import Cluster


class Adder(StateMachine):
    def __init__(self):
        self.total = 0

    def apply(self, command, origin):
        self.total += command
        return self.total


class TestReplication:
    def _cluster(self, seed=1):
        cluster = Cluster(list("abc"), seed=seed)
        replicas = {
            pid: ReplicatedStateMachine(cluster.to[pid], Adder())
            for pid in cluster.processes
        }
        cluster.start()
        cluster.settle(max_time=60)
        return cluster, replicas

    def test_all_replicas_apply_same_sequence(self):
        cluster, replicas = self._cluster()
        replicas["a"].submit(5)
        replicas["b"].submit(7)
        cluster.settle(max_time=300)
        logs = {tuple(r.command_log()) for r in replicas.values()}
        assert len(logs) == 1
        assert all(r.machine.total == 12 for r in replicas.values())

    def test_results_recorded_per_application(self):
        cluster, replicas = self._cluster(seed=2)
        replicas["a"].submit(1)
        replicas["a"].submit(2)
        cluster.settle(max_time=300)
        r = replicas["c"]
        assert r.log_length == 2
        # Running totals reflect application order.
        results = [result for _, _, result in r.applied]
        assert results == sorted(results)

    def test_base_class_requires_apply(self):
        with pytest.raises(NotImplementedError):
            StateMachine().apply("x", "p")

    def test_origin_passed_through(self):
        class OriginRecorder(StateMachine):
            def __init__(self):
                self.origins = []

            def apply(self, command, origin):
                self.origins.append(origin)

        cluster = Cluster(list("ab"), seed=3)
        replicas = {
            pid: ReplicatedStateMachine(cluster.to[pid], OriginRecorder())
            for pid in cluster.processes
        }
        cluster.start()
        cluster.settle(max_time=60)
        replicas["b"].submit("cmd")
        cluster.settle(max_time=200)
        assert replicas["a"].machine.origins == ["b"]
