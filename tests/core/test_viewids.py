"""Unit tests for view identifiers and the G_⊥ comparison helpers."""

import pytest

from repro.core.viewids import (
    G0,
    ViewId,
    vid_ge,
    vid_gt,
    vid_le,
    vid_lt,
    vid_max,
)


class TestViewIdOrdering:
    def test_epoch_dominates(self):
        assert ViewId(1, "z") < ViewId(2, "a")

    def test_origin_breaks_ties(self):
        assert ViewId(3, "a") < ViewId(3, "b")

    def test_total_order_is_strict(self):
        a, b = ViewId(2, "p"), ViewId(2, "p")
        assert a == b
        assert not a < b
        assert not b < a

    def test_g0_is_least(self):
        assert G0 < ViewId(0, "p")
        assert G0 < ViewId(1, "")
        assert not ViewId(0, "") < G0

    def test_sortable(self):
        ids = [ViewId(2, "b"), ViewId(1, "z"), ViewId(2, "a"), G0]
        assert sorted(ids) == [G0, ViewId(1, "z"), ViewId(2, "a"), ViewId(2, "b")]

    def test_comparison_operators(self):
        assert ViewId(1) <= ViewId(1)
        assert ViewId(1) >= ViewId(1)
        assert ViewId(1) <= ViewId(2)
        assert ViewId(2) >= ViewId(1)

    def test_hashable_and_eq(self):
        assert len({ViewId(1, "p"), ViewId(1, "p"), ViewId(1, "q")}) == 2


class TestSuccessor:
    def test_successor_is_strictly_greater(self):
        vid = ViewId(4, "p")
        assert vid < vid.successor()
        assert vid < vid.successor("anyone")

    def test_successor_epoch(self):
        assert ViewId(4, "p").successor("q") == ViewId(5, "q")


class TestBottomComparisons:
    def test_bottom_below_everything(self):
        assert vid_lt(None, G0)
        assert vid_lt(None, ViewId(7, "x"))
        assert not vid_lt(G0, None)

    def test_bottom_not_below_itself(self):
        assert not vid_lt(None, None)
        assert vid_le(None, None)

    def test_gt_ge(self):
        assert vid_gt(G0, None)
        assert vid_ge(G0, None)
        assert vid_ge(None, None)
        assert not vid_gt(None, None)

    def test_le_between_ids(self):
        assert vid_le(ViewId(1), ViewId(2))
        assert not vid_le(ViewId(2), ViewId(1))


class TestVidMax:
    def test_empty(self):
        assert vid_max([]) is None

    def test_all_bottom(self):
        assert vid_max([None, None]) is None

    def test_mixed(self):
        assert vid_max([None, ViewId(2), ViewId(5, "a"), ViewId(5)]) == ViewId(5, "a")

    def test_str_rendering(self):
        assert str(G0) == "g0"
        assert str(ViewId(3, "p1")) == "g3@p1"
