"""Unit tests for the Section 2 sequence calculus."""

import pytest

from repro.core.sequences import (
    applytoall,
    head,
    is_consistent,
    is_prefix,
    lub,
    nth,
    remove_head,
)


class TestPrefix:
    def test_empty_is_prefix_of_all(self):
        assert is_prefix([], [1, 2])
        assert is_prefix([], [])

    def test_proper_prefix(self):
        assert is_prefix([1, 2], [1, 2, 3])

    def test_equal_sequences(self):
        assert is_prefix([1, 2], [1, 2])

    def test_not_prefix(self):
        assert not is_prefix([1, 3], [1, 2, 3])
        assert not is_prefix([1, 2, 3], [1, 2])

    def test_accepts_tuples(self):
        assert is_prefix((1,), [1, 2])


class TestConsistency:
    def test_chain_is_consistent(self):
        assert is_consistent([[1], [1, 2], [1, 2, 3], []])

    def test_divergent_is_inconsistent(self):
        assert not is_consistent([[1, 2], [1, 3]])

    def test_empty_collection(self):
        assert is_consistent([])


class TestLub:
    def test_lub_of_chain(self):
        assert lub([[1], [1, 2, 3], [1, 2]]) == [1, 2, 3]

    def test_lub_of_empty(self):
        assert lub([]) == []

    def test_lub_rejects_inconsistent(self):
        with pytest.raises(ValueError):
            lub([[1, 2], [1, 3]])

    def test_lub_all_empty(self):
        assert lub([[], []]) == []


class TestApplyToAll:
    def test_mapping(self):
        assert applytoall(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_empty(self):
        assert applytoall(lambda x: x, []) == []


class TestIndexing:
    def test_nth_is_one_based(self):
        assert nth([10, 20, 30], 1) == 10
        assert nth([10, 20, 30], 3) == 30

    def test_nth_out_of_range(self):
        assert nth([10], 0) is None
        assert nth([10], 2) is None
        assert nth([], 1) is None

    def test_head(self):
        assert head([5, 6]) == 5
        assert head([]) is None

    def test_remove_head(self):
        queue = [1, 2, 3]
        assert remove_head(queue) == 1
        assert queue == [2, 3]
