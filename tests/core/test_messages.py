"""Unit tests for the message taxonomy and the purge functions."""

from repro.core.messages import (
    InfoMsg,
    RegisteredMsg,
    is_client_message,
    purge,
    purgesize,
)
from repro.core.views import make_view


class TestClassification:
    def test_client_messages(self):
        assert is_client_message("hello")
        assert is_client_message(("m", "p1", 0))
        assert is_client_message(42)

    def test_info_is_not_client(self):
        assert not is_client_message(InfoMsg(make_view(0, "ab")))

    def test_registered_is_not_client(self):
        assert not is_client_message(RegisteredMsg())


class TestInfoMsg:
    def test_amb_coerced_to_frozenset(self):
        info = InfoMsg(make_view(0, "ab"), {make_view(1, "a")})
        assert isinstance(info.amb, frozenset)

    def test_hashable(self):
        a = InfoMsg(make_view(0, "ab"), frozenset({make_view(1, "a")}))
        b = InfoMsg(make_view(0, "ab"), frozenset({make_view(1, "a")}))
        assert a == b
        assert len({a, b}) == 1


class TestPurge:
    def test_purge_plain_messages(self):
        v = make_view(0, "ab")
        queue = ["m1", InfoMsg(v), "m2", RegisteredMsg(), "m3"]
        assert purge(queue) == ["m1", "m2", "m3"]
        assert purgesize(queue) == 2

    def test_purge_pairs(self):
        v = make_view(0, "ab")
        queue = [("m1", "p"), (InfoMsg(v), "q"), (RegisteredMsg(), "p")]
        assert purge(queue) == [("m1", "p")]
        assert purgesize(queue) == 2

    def test_purge_empty(self):
        assert purge([]) == []
        assert purgesize([]) == 0

    def test_purge_preserves_order(self):
        queue = ["b", RegisteredMsg(), "a"]
        assert purge(queue) == ["b", "a"]
