"""Unit tests for static quorum systems."""

import itertools

import pytest

from repro.core.quorums import MajorityQuorums, WeightedMajorityQuorums


class TestMajorityQuorums:
    def test_strict_majority(self):
        qs = MajorityQuorums("abcd")
        assert not qs.is_quorum("ab")
        assert qs.is_quorum("abc")

    def test_outside_universe_ignored(self):
        qs = MajorityQuorums("abc")
        assert not qs.is_quorum({"x", "y", "z"})
        assert qs.is_quorum({"a", "b", "x"})

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            MajorityQuorums([])

    def test_pairwise_intersection_exhaustive(self):
        universe = "abcde"
        qs = MajorityQuorums(universe)
        quorums = [
            set(c)
            for size in range(1, 6)
            for c in itertools.combinations(universe, size)
            if qs.is_quorum(c)
        ]
        for a in quorums:
            for b in quorums:
                assert a & b

    def test_check_intersection_helper(self):
        qs = MajorityQuorums("abcde")
        assert qs.check_intersection(["abc", "cde", "abcd", "ab"])


class TestWeightedMajorityQuorums:
    def test_weighted(self):
        qs = WeightedMajorityQuorums({"a": 3, "b": 1, "c": 1})
        assert qs.is_quorum({"a"})          # 3 of 5
        assert not qs.is_quorum({"b", "c"})  # 2 of 5

    def test_equal_weights_match_majority(self):
        w = WeightedMajorityQuorums({p: 1 for p in "abcd"})
        m = MajorityQuorums("abcd")
        for size in range(5):
            for combo in itertools.combinations("abcd", size):
                assert w.is_quorum(combo) == m.is_quorum(combo)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            WeightedMajorityQuorums({})
        with pytest.raises(ValueError):
            WeightedMajorityQuorums({"a": -1, "b": 2})
        with pytest.raises(ValueError):
            WeightedMajorityQuorums({"a": 0})

    def test_disjoint_quorums_impossible(self):
        qs = WeightedMajorityQuorums({"a": 2, "b": 2, "c": 1, "d": 1})
        quorums = [
            set(c)
            for size in range(1, 5)
            for c in itertools.combinations("abcd", size)
            if qs.is_quorum(c)
        ]
        for a in quorums:
            for b in quorums:
                assert a & b
