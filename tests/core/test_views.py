"""Unit tests for views."""

import pytest

from repro.core.views import View, make_view
from repro.core.viewids import ViewId


class TestConstruction:
    def test_make_view_from_epoch(self):
        v = make_view(3, {"a", "b"})
        assert v.id == ViewId(3)
        assert v.set == frozenset({"a", "b"})

    def test_make_view_from_viewid(self):
        vid = ViewId(2, "p")
        assert make_view(vid, "ab").id == vid

    def test_members_coerced_to_frozenset(self):
        v = View(ViewId(1), {"a"})
        assert isinstance(v.members, frozenset)

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            View(ViewId(1), frozenset())

    def test_hashable(self):
        assert len({make_view(1, "ab"), make_view(1, "ab")}) == 1

    def test_set_alias(self):
        v = make_view(1, "abc")
        assert v.set is v.members


class TestMajorityOf:
    def test_strict_majority_required(self):
        w = make_view(1, {"a", "b", "c", "d"})
        assert not make_view(2, {"a", "b"}).majority_of(w)  # exactly half
        assert make_view(2, {"a", "b", "c"}).majority_of(w)

    def test_majority_of_odd(self):
        w = make_view(1, {"a", "b", "c"})
        assert make_view(2, {"b", "c"}).majority_of(w)
        assert not make_view(2, {"c"}).majority_of(w)

    def test_disjoint_is_not_majority(self):
        w = make_view(1, {"a"})
        assert not make_view(2, {"b"}).majority_of(w)

    def test_singleton(self):
        w = make_view(1, {"a"})
        assert make_view(2, {"a", "b"}).majority_of(w)


class TestIntersects:
    def test_intersecting(self):
        assert make_view(1, "ab").intersects(make_view(2, "bc"))

    def test_disjoint(self):
        assert not make_view(1, "ab").intersects(make_view(2, "cd"))

    def test_majority_implies_intersection(self):
        w = make_view(1, "abc")
        v = make_view(2, "bcz")
        assert v.majority_of(w)
        assert v.intersects(w)
