"""Unit tests for sparse state tables."""

import copy

from repro.core.tables import Table


class TestReads:
    def test_get_returns_default_when_absent(self):
        t = Table(list)
        assert t.get("x") == []

    def test_get_default_is_fresh(self):
        t = Table(list)
        t.get("x").append(1)
        assert t.get("x") == []

    def test_contains(self):
        t = Table(lambda: 0)
        assert "k" not in t
        t["k"] = 1
        assert "k" in t


class TestWrites:
    def test_at_materializes(self):
        t = Table(list)
        t.at("x").append(1)
        assert t.get("x") == [1]

    def test_setitem(self):
        t = Table(lambda: 1)
        t["a"] = 5
        assert t.get("a") == 5

    def test_composite_keys(self):
        t = Table(lambda: 1)
        t[("p", "g")] = 3
        assert t.get(("p", "g")) == 3
        assert t.get(("p", "h")) == 1


class TestValueSemantics:
    def test_default_entries_invisible(self):
        a = Table(list)
        b = Table(list)
        a["x"] = []  # explicitly stored default
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_nondefault_entries_compared(self):
        a = Table(list)
        b = Table(list)
        a.at("x").append(1)
        assert a != b
        b.at("x").append(1)
        assert a == b

    def test_counter_defaults(self):
        a = Table(lambda: 1)
        b = Table(lambda: 1)
        a["k"] = 1
        assert a == b
        a["k"] = 2
        assert a != b

    def test_hash_consistent(self):
        a = Table(lambda: 0, {"x": 1})
        b = Table(lambda: 0, {"x": 1, "y": 0})
        assert hash(a) == hash(b)

    def test_nondefault_items(self):
        t = Table(lambda: False, {"a": True, "b": False})
        assert t.nondefault_items() == {"a": True}


class TestCopying:
    def test_deepcopy_isolates(self):
        t = Table(list)
        t.at("x").append(1)
        clone = copy.deepcopy(t)
        clone.at("x").append(2)
        assert t.get("x") == [1]
        assert clone.get("x") == [1, 2]

    def test_deepcopy_keeps_default(self):
        t = Table(lambda: 7)
        clone = copy.deepcopy(t)
        assert clone.get("anything") == 7
