"""Integration: the layered theorems compose.

The paper's two results chain: DVS-IMPL implements DVS (Theorem 5.9) and
TO-IMPL over DVS implements TO (Theorem 6.4), so TO over VS-TO-DVS over VS
implements TO.  We execute exactly that tower -- as IOA composition and as
the runtime stack -- and check the TO trace properties directly.
"""

import pytest

from repro.checking import check_to_trace_properties, random_view_pool
from repro.checking.harness import build_closed_full_stack
from repro.core import make_view
from repro.ioa import run_random


class TestIoaTower:
    @pytest.mark.parametrize("seed", range(6))
    def test_to_properties_on_full_tower(self, seed):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 3, seed=seed + 50, min_size=2)
        system, procs = build_closed_full_stack(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(
            system,
            5000,
            seed=seed,
            weights={"vs_createview": 0.03, "vs_newview": 0.5, "bcast": 1.0},
        )
        stats = check_to_trace_properties(ex.trace())
        assert stats["broadcasts"] == 6

    def test_quiet_tower_delivers_everything(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_full_stack(v0, universe, budget=2)
        ex = run_random(system, 9000, seed=0, weights={"bcast": 1.0})
        stats = check_to_trace_properties(ex.trace())
        assert stats["deliveries"] == 6 * 3

    def test_signature_is_to_only(self):
        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        system, procs = build_closed_full_stack(v0, universe)
        assert "vs_gprcv" in system.internals
        assert "dvs_gprcv" in system.internals
        ex = run_random(system, 500, seed=1)
        assert {a.name for a in ex.trace()} <= {"bcast", "brcv"}


class TestRuntimeTower:
    @pytest.mark.parametrize("seed", range(4))
    def test_runtime_stack_matches_ioa_guarantees(self, seed):
        from repro.gcs.cluster import Cluster

        # One seed runs with the effect-isolation checker armed: the
        # dynamic cross-check of the repro-lint purity/aliasing passes.
        c = Cluster(
            list("abcd"), seed=seed, check_effects=(seed == 0)
        ).start()
        c.settle(max_time=60)
        for i in range(2):
            for pid in "abcd":
                c.bcast(pid, ("a", pid, i))
        c.run(25)
        c.partition({"a", "b", "c"}, {"d"})
        c.run(50)
        c.heal()
        c.settle(max_time=500)
        stats = check_to_trace_properties(c.log.actions)
        assert stats["broadcasts"] == 8
        # Everything settles after heal: all four deliver the full order.
        assert stats["max_delivered"] == 8
