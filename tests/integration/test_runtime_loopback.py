"""Acceptance: the live stack on real TCP loopback sockets.

The headline scenario mirrors the paper's service story end to end, on
actual sockets rather than the simulator: a 3-node cluster totally
orders at least 200 client requests with the online safety monitor
armed on the shared action log -- including a node crash, a view
reformation by the surviving majority, and an amnesiac rejoin with
state transfer -- and finishes with zero safety violations.
"""

import pytest

from repro.apps.kv_store import KvReplica
from repro.runtime.cluster import RuntimeCluster

PIDS = ["n1", "n2", "n3"]
WAIT = 60.0


@pytest.fixture
def cluster():
    c = RuntimeCluster(
        PIDS,
        app_factory=lambda node: KvReplica(node.to),
        hb_interval=0.05,
        hb_timeout=0.25,
        obs=True,
    )
    with c:
        yield c


def drive(cluster, pids, start, count):
    """Issue ``count`` puts round-robin over ``pids``; payloads are
    globally unique so the monitor's no-duplication check has teeth."""
    for i in range(start, start + count):
        pid = pids[i % len(pids)]
        cluster.call_app(
            pid,
            lambda app, i=i: app.put("key-{0}".format(i % 16),
                                     "value-{0}".format(i)),
        )
    return start + count


def wait_applied(cluster, pids, total, timeout=WAIT):
    cluster.wait_until(
        lambda: all(
            cluster.app(pid).log_length >= total for pid in pids
        ),
        timeout=timeout,
        what="{0} commands applied on {1}".format(total, sorted(pids)),
    )


def test_200_requests_with_crash_and_rejoin(cluster):
    cluster.wait_formation(timeout=WAIT)

    sent = drive(cluster, PIDS, 0, 120)
    wait_applied(cluster, PIDS, sent)

    # Crash one node mid-run; the surviving majority must reform a
    # primary view and keep serving.
    cluster.kill("n3")
    survivors = ["n1", "n2"]
    cluster.wait_formation(survivors, timeout=WAIT)
    sent = drive(cluster, survivors, sent, 60)
    wait_applied(cluster, survivors, sent)

    # Amnesiac rejoin: fresh process, same id, new port.  It must be
    # readmitted and rebuild all prior state from the total order.
    cluster.restart("n3")
    cluster.wait_formation(PIDS, timeout=WAIT)
    sent = drive(cluster, PIDS, sent, 20)
    assert sent >= 200
    wait_applied(cluster, PIDS, sent)

    # Zero violations from the online monitor, no layer errors.
    cluster.check()
    assert cluster.violations == []

    # Replica consistency: every node (including the restarted one)
    # applied the same 200 commands in the same order.
    logs = {
        pid: cluster.call_app(pid, lambda app: app.command_log())
        for pid in PIDS
    }
    assert all(len(log) == sent for log in logs.values())
    assert logs["n1"] == logs["n2"] == logs["n3"]

    # And the materialized KV states agree.
    snaps = {
        pid: cluster.call_app(pid, lambda app: app.snapshot())
        for pid in PIDS
    }
    assert snaps["n1"] == snaps["n2"] == snaps["n3"]
    assert len(snaps["n1"]) == 16

    # Observability rides along: every span stitched across crash,
    # reformation and rejoin still finds its to_label root.
    trace = cluster.trace_snapshot()
    assert trace["orphans"] == []
    assert trace["summary"]["events_dropped"] == 0
    assert trace["summary"]["deliveries"] > 0
    # The crash/reformation/rejoin produced observable view spans.
    assert len(trace["views"]) >= 2


def test_formation_and_steady_traffic(cluster):
    cluster.wait_formation(timeout=WAIT)
    for pid in PIDS:
        view = cluster.call_node(pid, lambda n: n.to.current)
        assert view is not None and view.set == frozenset(PIDS)
    sent = drive(cluster, PIDS, 0, 30)
    wait_applied(cluster, PIDS, sent)
    cluster.check()
    # Total order: all replicas saw the identical sequence.
    logs = [
        cluster.call_app(pid, lambda app: app.command_log())
        for pid in PIDS
    ]
    assert logs[0] == logs[1] == logs[2]


def test_minority_cannot_form_but_majority_can(cluster):
    cluster.wait_formation(timeout=WAIT)
    cluster.kill("n2")
    cluster.kill("n3")
    # A single node out of three is not a quorum of the established
    # view: it must not form a primary view on its own.
    with pytest.raises(TimeoutError):
        cluster.wait_formation(["n1"], timeout=2.0)
    cluster.restart("n2")
    cluster.wait_formation(["n1", "n2"], timeout=WAIT)
    cluster.check()
