"""Acceptance: the CB tier on real TCP loopback sockets.

Both ordering towers live on one DVS substrate per node; this exercises
the causal tower end to end -- presence boards converging over CB while
KV commands flow over TO, per-sender FIFO observed at every replica, a
crash/rejoin cycle repairing the board in the new view -- with the
online safety monitor (including the CB causal-order checks) armed on
the shared action log throughout.
"""

import pytest

from repro.apps.kv_store import KvReplica
from repro.apps.presence import PresenceBoard
from repro.runtime.cluster import RuntimeCluster

PIDS = ["n1", "n2", "n3"]
WAIT = 60.0


@pytest.fixture
def cluster():
    c = RuntimeCluster(
        PIDS,
        app_factory=lambda node: KvReplica(node.to),
        cb_app_factory=lambda node: PresenceBoard(node.cb),
        hb_interval=0.05,
        hb_timeout=0.25,
    )
    with c:
        yield c


def cb_count(cluster, pid):
    """Deliveries at ``pid`` -- direct log read, loop-thread safe."""
    return sum(
        1 for a in cluster.log.actions
        if a.name == "cb_brcv" and a.params[2] == pid
    )


def wait_boards(cluster, pids, status, timeout=WAIT):
    cluster.wait_until(
        lambda: all(
            cluster.cb_app(p).status_of(q) == status
            for p in pids for q in pids
        ),
        timeout=timeout,
        what="boards showing {0!r} on {1}".format(status, sorted(pids)),
    )


def test_presence_over_cb_with_crash_and_rejoin(cluster):
    cluster.wait_formation(timeout=WAIT)

    # Round 1: everyone announces; all boards converge over CB.
    for pid in PIDS:
        cluster.call_cb_app(pid, lambda app: app.typing(True))
        cluster.call_cb_app(pid, lambda app: app.announce("online"))
        cluster.call_cb_app(pid, lambda app: app.typing(False))
    wait_boards(cluster, PIDS, "online")
    cluster.wait_until(
        lambda: all(
            not cluster.cb_app(p).typing_now() for p in PIDS
        ),
        timeout=WAIT,
        what="typing indicators cleared",
    )

    # Per-sender FIFO: every replica saw each member's start-typing
    # strictly before its stop-typing.
    for p in PIDS:
        events = cluster.call_cb_app(p, lambda app: list(app.events))
        for q in PIDS:
            typed = [v for k, v, o in events if k == "typing" and o == q]
            assert typed == [True, False], (p, q, typed)

    # Interleave the tiers: KV writes over TO, status flips over CB.
    for i in range(12):
        pid = PIDS[i % 3]
        cluster.call_app(
            pid, lambda app, i=i: app.put("k{0}".format(i), i)
        )
        cluster.call_cb_app(
            pid, lambda app, i=i: app.announce("busy-{0}".format(i))
        )
    cluster.wait_until(
        lambda: all(
            cluster.app(p).log_length >= 12 for p in PIDS
        ),
        timeout=WAIT,
        what="12 KV commands applied",
    )
    cluster.wait_until(
        lambda: all(
            cluster.cb_app(p).status_of(q) is not None
            and str(cluster.cb_app(p).status_of(q)).startswith("busy-")
            for p in PIDS for q in PIDS
        ),
        timeout=WAIT,
        what="busy statuses propagated",
    )

    # Crash n3; survivors keep converging in the reformed view.
    cluster.kill("n3")
    cluster.wait_formation(["n1", "n2"], timeout=WAIT)
    for pid in ("n1", "n2"):
        cluster.call_cb_app(pid, lambda app: app.announce("paired"))
    wait_boards(cluster, ["n1", "n2"], "paired")

    # Rejoin: the view-scoped board repairs from fresh announcements.
    cluster.restart("n3")
    cluster.wait_formation(PIDS, timeout=WAIT)
    for pid in PIDS:
        cluster.call_cb_app(pid, lambda app: app.announce("back"))
    wait_boards(cluster, PIDS, "back")

    cluster.check()
    assert cluster.violations == []


def test_per_sender_fifo_under_load(cluster):
    cluster.wait_formation(timeout=WAIT)
    for i in range(30):
        cluster.call_cb_app(
            "n1", lambda app, i=i: app.announce("s{0}".format(i))
        )
    cluster.wait_until(
        lambda: all(
            cluster.cb_app(p).status_of("n1") == "s29" for p in PIDS
        ),
        timeout=WAIT,
        what="30 statuses from n1 settled everywhere",
    )
    for p in PIDS:
        events = cluster.call_cb_app(p, lambda app: list(app.events))
        from_n1 = [v for k, v, o in events if o == "n1"]
        assert from_n1 == ["s{0}".format(i) for i in range(30)]
    cluster.check()
