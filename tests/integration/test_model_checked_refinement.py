"""Model-checked refinement: Lemma 5.8 on *every* reachable transition.

The randomized campaigns check the step correspondence along sampled
executions; here we exhaustively enumerate the reachable state space of a
small DVS-IMPL configuration and check the correspondence on every single
transition -- the closest an executable artifact gets to the paper's
universally quantified lemma.
"""

from collections import deque

import pytest

from repro.checking import build_closed_dvs_impl, grid_view_pool
from repro.checking.harness import build_closed_sx_to_impl
from repro.core import make_view
from repro.dvs import dvs_refinement_checker
from repro.ioa.execution import Step
from repro.to import to_refinement_checker


def check_all_transitions(system, checker, max_states=4000):
    """BFS the reachable space, checking each transition's fragment.

    Returns (states, transitions) covered; raises on any failure.
    """
    initial = system.initial_state()
    checker.check_initial(initial)
    visited = {initial.fingerprint()}
    queue = deque([initial])
    states = 1
    transitions = 0
    while queue and states < max_states:
        state = queue.popleft()
        for action in system.enabled_controlled(state):
            next_state = system.apply(state, action)
            checker.check_step(Step(state, action, next_state))
            transitions += 1
            key = next_state.fingerprint()
            if key not in visited:
                visited.add(key)
                states += 1
                queue.append(next_state)
    return states, transitions


class TestTheorem59ModelChecked:
    def test_two_process_configuration(self):
        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        pool = grid_view_pool(universe, max_epoch=1, min_size=2)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=1, eager_register=True
        )
        checker = dvs_refinement_checker(procs, v0, universe)
        states, transitions = check_all_transitions(
            system, checker, max_states=2500
        )
        assert transitions > 1000

    def test_single_view_change_configuration(self):
        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        v1 = make_view(1, universe)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=[v1], budget=1, eager_register=True
        )
        checker = dvs_refinement_checker(procs, v0, universe)
        states, transitions = check_all_transitions(
            system, checker, max_states=4000
        )
        assert transitions > 500


class TestTheorem64ModelChecked:
    def test_two_process_to_impl(self):
        from repro.checking import build_closed_to_impl

        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        system, procs = build_closed_to_impl(v0, universe, budget=1)
        checker = to_refinement_checker(procs)
        states, transitions = check_all_transitions(
            system, checker, max_states=2000
        )
        assert transitions > 300
