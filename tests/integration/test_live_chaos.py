"""Acceptance: live chaos + trace-driven deterministic replay.

The issue's headline criteria, end to end on real loopback sockets:

1. the *same* NemesisPlan (partition + latency + loss) runs against
   both the deterministic simulator and a live 3-node TCP cluster with
   zero SafetyMonitor violations;
2. the recorded live trace replays deterministically -- two replays
   produce identical delivery orders and digests;
3. a deliberately injected violation in a live run (the ablated
   no-majority DVS layer under a clean partition) shrinks via ddmin to
   a minimal simulator-checked counterexample that still trips the
   same safety property.
"""

import pytest

from repro.checking.replay import (
    check_replay_determinism,
    replay_trace,
    shrink_replay,
)
from repro.dvs.ablation import NoMajorityDvsLayer
from repro.faults.harness import run_chaos
from repro.faults.nemesis import NemesisPlan
from repro.obs.record import ReplayTrace
from repro.runtime.chaos import run_live_chaos

PIDS = ["n1", "n2", "n3"]


def _storm_plan(start, length, step):
    """Partition + latency + loss over ``[start, start+length]``: the
    issue's headline plan, parameterized so the *same shape* runs in
    simulator time units and in wall-clock seconds."""
    mid = start + length / 2.0
    return NemesisPlan([
        (start, "delay", (None, step * 0.5, 0.1, step, length)),
        (start, "drop", (None, 0.05, length)),
        (mid - length / 4.0, "partition", ((("n1", "n2"), ("n3",)),)),
        (mid + length / 4.0, "heal", ()),
    ])


class TestSamePlanBothWorlds:
    def test_simulator_run_is_clean(self):
        plan = _storm_plan(start=20.0, length=120.0, step=2.0)
        result = run_chaos(PIDS, plan=plan, duration=240.0,
                           broadcast_interval=8.0, seed=11)
        assert result.ok
        assert result.violation is None

    def test_live_run_is_clean_and_replays_deterministically(self):
        plan = _storm_plan(start=1.0, length=4.0, step=0.05)
        result = run_live_chaos(
            PIDS, plan=plan, duration=7.0, broadcast_interval=0.2,
            settle_time=2.0, fault_seed=11,
        )
        assert result.violations == []
        assert result.stats["faultnet"]["delayed_sends"] > 0

        trace = result.trace
        assert isinstance(trace, ReplayTrace)
        assert len(trace) > 0
        first, second = check_replay_determinism(trace)
        assert first.digest == second.digest
        assert first.deliveries == second.deliveries
        # Replay sees the same safe execution the live monitor saw.
        assert first.violations == []
        assert first.stats["broadcasts"] == result.stats["broadcasts"]
        assert first.stats["deliveries"] == result.stats["deliveries"]


class TestInjectedViolationShrinks:
    @pytest.fixture(scope="class")
    def broken_run(self):
        # Five nodes, clean partition into 3+2, and a DVS layer whose
        # majority check is ablated away: both sides form views, and
        # the paper's dvs-4.1 intersection property must trip.
        pids = ["n1", "n2", "n3", "n4", "n5"]
        plan = NemesisPlan([
            (1.0, "partition", ((("n1", "n2", "n3"), ("n4", "n5")),)),
        ])
        return run_live_chaos(
            pids, plan=plan, duration=6.0, broadcast_interval=0.2,
            settle_time=2.0, dvs_factory=NoMajorityDvsLayer,
        )

    def test_live_violation_reproduces_in_replay(self, broken_run):
        assert broken_run.violations, "ablated layer failed to misbehave"
        prop = broken_run.violations[0].prop
        result = replay_trace(broken_run.trace)
        assert any(v.prop == prop for v in result.violations)

    def test_ddmin_yields_minimal_counterexample(self, broken_run):
        prop = broken_run.violations[0].prop
        minimal, probes, result = shrink_replay(
            broken_run.trace, max_probes=400, prop=prop,
        )
        assert any(v.prop == prop for v in result.violations)
        assert len(minimal) < len(broken_run.trace)
        # 1-minimality: removing any single remaining event loses the
        # violation (that is ddmin's contract; spot-check a few).
        for index in range(min(len(minimal), 3)):
            weaker = replay_trace(minimal.without([index]))
            assert not any(v.prop == prop for v in weaker.violations)
