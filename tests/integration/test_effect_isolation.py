"""Runtime cross-check of the static purity/aliasing passes.

``repro lint`` proves *syntactically* that no handler mutates foreign
state; ``Cluster(check_effects=True)`` proves it *dynamically* on real
runs by snapshot-comparing every other process's layer state around
each event dispatch.  These tests run the full stack through view
changes, partitions and broadcasts with the checker armed -- and then
deliberately break isolation to show the checker actually bites.
"""

import pytest

from repro.checking import check_to_trace_properties
from repro.gcs.cluster import Cluster
from repro.gcs.effect_check import EffectIsolationError


class TestCheckEffectsCleanRuns:
    def test_quiet_formation_is_isolated(self):
        c = Cluster(list("abc"), seed=11, check_effects=True).start()
        c.settle(max_time=60)
        assert c.effect_checker.checks > 0

    def test_partition_heal_broadcasts_are_isolated(self):
        c = Cluster(list("abcd"), seed=12, check_effects=True).start()
        c.settle(max_time=60)
        for pid in "abcd":
            c.bcast(pid, ("m", pid))
        c.settle(max_time=60)
        c.partition({"a", "b", "c"}, {"d"})
        c.settle(max_time=60)
        c.bcast("a", ("m2", "a"))
        c.heal()
        c.settle(max_time=240)
        assert c.effect_checker.checks > 100
        # The monitored run still satisfies the TO trace properties.
        check_to_trace_properties(c.log.actions)

    def test_crash_recovery_is_isolated(self):
        c = Cluster(list("abc"), seed=13, check_effects=True).start()
        c.settle(max_time=60)
        c.crash("c")
        c.settle(max_time=60)
        c.bcast("a", ("during-crash", "a"))
        c.recover("c")
        c.settle(max_time=240)
        assert c.effect_checker.checks > 0


class TestCheckEffectsCatchesViolations:
    def test_foreign_mutation_raises(self):
        c = Cluster(list("abc"), seed=14, check_effects=True)
        victim = c.dvs["a"]
        original = c.dvs["b"]._on_info

        def evil(info, sender):
            original(info, sender)
            # Reaches across process boundaries: b's handler pokes a's
            # filter state, which a real distributed system cannot do.
            victim.pending_deliveries.append(("smuggled", "b"))

        c.dvs["b"]._on_info = evil
        c.start()
        with pytest.raises(EffectIsolationError) as excinfo:
            c.settle(max_time=120)
        assert excinfo.value.foreign_pid == "a"
        assert any(
            "pending_deliveries" in detail
            for detail in excinfo.value.details
        )

    def test_in_place_foreign_mutation_is_seen(self):
        """Mutating a foreign *nested* structure (no rebinding) is
        caught too -- this is exactly what repr-by-address would miss
        and the structural fingerprint must not."""
        c = Cluster(list("abc"), seed=15, check_effects=True)
        victim_stack = c.stacks["a"]
        original = c.dvs["b"]._on_info

        def evil(info, sender):
            original(info, sender)
            victim_stack.ordering.safe_notes.add(("bogus", 0))

        c.dvs["b"]._on_info = evil
        c.start()
        with pytest.raises(EffectIsolationError):
            c.settle(max_time=120)

    def test_checker_off_by_default(self):
        c = Cluster(list("ab"), seed=16)
        assert c.effect_checker is None
