"""The mechanized Theorem 6.4: TO-IMPL refines the TO service."""

import pytest

from repro.core import make_view
from repro.checking import build_closed_to_impl, random_view_pool
from repro.ioa import run_random
from repro.to import to_refinement_checker
from repro.to.refinement import all_confirm, to_refinement_f
from repro.to.impl import ToImplState

WEIGHTS = {"dvs_createview": 0.05, "dvs_newview": 0.5, "bcast": 1.0}


def run_impl(seed, steps=4000):
    universe = ["p1", "p2", "p3"]
    v0 = make_view(0, universe)
    pool = random_view_pool(universe, 4, seed=seed + 100, min_size=2)
    system, procs = build_closed_to_impl(
        v0, universe, view_pool=pool, budget=3
    )
    ex = run_random(system, steps, seed=seed, weights=WEIGHTS)
    return ex, procs


class TestInitialCorrespondence:
    def test_initial_maps_to_initial(self):
        ex, procs = run_impl(seed=0, steps=0)
        to_refinement_checker(procs).check_initial(ex.initial_state)


class TestStepCorrespondence:
    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_6_4_along_random_executions(self, seed):
        ex, procs = run_impl(seed=seed)
        checker = to_refinement_checker(procs)
        total = checker.check_execution(ex)
        externals = sum(
            1 for a in ex.actions() if a.name in ("bcast", "brcv")
        )
        assert total >= externals

    def test_confirm_steps_map_to_order_or_stutter(self):
        from repro.ioa.action import act as _  # noqa: F401

        ex, procs = run_impl(seed=2)
        checker = to_refinement_checker(procs)
        checker.check_initial(ex.initial_state)
        orders = 0
        for step in ex.steps:
            fragment = checker.check_step(step)
            if step.action.name == "confirm":
                assert all(a.name == "to_order" for a in fragment)
                orders += len(fragment)
            elif step.action.name in ("bcast", "brcv"):
                assert [a.name for a in fragment].count(step.action.name) == 1
        confirms = sum(1 for a in ex.actions() if a.name == "confirm")
        if confirms:
            assert orders >= 1


class TestMappingInternals:
    def test_all_confirm_is_lub_of_prefixes(self):
        ex, procs = run_impl(seed=1)
        impl = ToImplState(ex.final_state, procs)
        confirmed = all_confirm(impl)
        for p in procs:
            app = impl.app(p)
            prefix = list(app.order)[: app.nextconfirm - 1]
            assert confirmed[: len(prefix)] == prefix

    def test_pending_carries_delay_tail(self):
        """The Section 6.2 adaptation: pending includes the delay buffer."""
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_to_impl(v0, universe, budget=1)
        from repro.ioa.action import act

        s = system.initial_state()
        s = system.apply(s, act("bcast", ("a", "p1", 0), "p1"))
        mapping = to_refinement_f(procs)
        t = mapping(s)
        assert t.pending["p1"] == [("a", "p1", 0)]

    def test_order_entries_attributed(self):
        ex, procs = run_impl(seed=3)
        mapping = to_refinement_f(procs)
        t = mapping(ex.final_state)
        for payload, origin in t.order:
            # Driver payloads carry their origin: ("a", pid, i).
            assert payload[1] == origin
