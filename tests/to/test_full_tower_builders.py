"""Coverage for the alternative TO-IMPL builders in repro.to.impl."""

import pytest

from repro.checking import check_to_trace_properties
from repro.checking.drivers import ToClientDriver
from repro.core import make_view
from repro.ioa import Composition, run_random
from repro.to.impl import (
    ToImplState,
    build_to_impl,
    build_to_over_dvs_impl,
    to_impl_allstate,
)


class TestBuilders:
    def test_to_impl_signature(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_to_impl(v0, ["p1", "p2"])
        assert "dvs_gprcv" in system.internals
        assert "bcast" in system.inputs
        assert "brcv" in system.outputs

    def test_to_over_dvs_impl_signature(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_to_over_dvs_impl(v0, ["p1", "p2"])
        assert "vs_gprcv" in system.internals
        assert "dvs_gprcv" in system.internals
        assert "brcv" in system.outputs

    def test_to_over_dvs_impl_runs(self):
        v0 = make_view(0, ["p1", "p2"])
        tower = build_to_over_dvs_impl(v0, ["p1", "p2"])
        clients = [ToClientDriver(p, budget=1) for p in ["p1", "p2"]]
        system = Composition(
            tower.components + clients,
            hidden=tower.hidden,
            name="closed_tower",
        )
        ex = run_random(system, 4000, seed=0)
        stats = check_to_trace_properties(ex.trace())
        assert stats["deliveries"] == 2 * 2

    def test_allstate_helper(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_to_impl(v0, ["p1", "p2"])
        assert to_impl_allstate(
            system.initial_state(), ["p1", "p2"]
        ) == set()

    def test_impl_state_accessors(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_to_impl(v0, ["p1", "p2"])
        state = ToImplState(system.initial_state(), ["p1", "p2"])
        assert state.created == {v0}
        assert state.app("p1").current == v0
