"""Execution tests for TO-IMPL: Invariants 6.1-6.3 and trace properties."""

import pytest

from repro.core import make_view
from repro.checking import (
    build_closed_to_impl,
    check_to_trace_properties,
    random_view_pool,
)
from repro.ioa import run_random
from repro.to import to_impl_invariants
from repro.to.impl import ToImplState, build_to_impl, build_to_over_dvs_impl

WEIGHTS = {"dvs_createview": 0.05, "dvs_newview": 0.5, "bcast": 1.0}


class TestInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_and_trace(self, seed):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 4, seed=seed + 100, min_size=2)
        system, procs = build_closed_to_impl(
            v0, universe, view_pool=pool, budget=3
        )
        ex = run_random(system, 4000, seed=seed, weights=WEIGHTS)
        to_impl_invariants(procs).check_execution(ex)
        stats = check_to_trace_properties(ex.trace())
        assert stats["broadcasts"] == 9

    @pytest.mark.parametrize("seed", range(3))
    def test_larger_universe(self, seed):
        universe = ["p1", "p2", "p3", "p4"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 3, seed=seed + 9, min_size=3)
        system, procs = build_closed_to_impl(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(system, 5000, seed=seed, weights=WEIGHTS)
        to_impl_invariants(procs).check_execution(ex)
        check_to_trace_properties(ex.trace())


class TestAllstate:
    def test_initial_allstate_empty(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        impl = build_to_impl(v0, universe)
        state = ToImplState(impl.initial_state(), universe)
        assert state.allstate() == set()

    def test_allstate_collects_summaries(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 2, seed=5, min_size=3)
        system, procs = build_closed_to_impl(
            v0, universe, view_pool=pool, budget=1
        )
        ex = run_random(system, 3000, seed=2, weights=WEIGHTS)
        newviews = sum(1 for a in ex.actions() if a.name == "dvs_newview")
        summaries = ToImplState(ex.final_state, procs).allstate()
        if newviews:
            assert summaries  # some state exchange happened and is visible


class TestDeliveryProgress:
    def test_quiet_network_delivers_everything(self):
        """With no view changes at all, every broadcast is delivered to
        every member (liveness in the stable case)."""
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_to_impl(v0, universe, budget=2)
        ex = run_random(system, 6000, seed=1, weights=WEIGHTS)
        stats = check_to_trace_properties(ex.trace())
        assert stats["deliveries"] == 6 * 3  # 6 broadcasts x 3 receivers

    def test_delivery_order_identical_across_processes(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_to_impl(v0, universe, budget=2)
        ex = run_random(system, 6000, seed=4, weights=WEIGHTS)
        per_process = {}
        for action in ex.trace():
            if action.name == "brcv":
                a, q, p = action.params
                per_process.setdefault(p, []).append((a, q))
        sequences = list(per_process.values())
        assert len(set(map(tuple, sequences))) == 1  # all complete & equal
