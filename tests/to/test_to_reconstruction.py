"""The Figure 5 reconstruction decision (DESIGN.md note 1), as a test.

The OCR'd figure orders every received label unconditionally
(``order := order + l``).  This module pins down, as a deterministic
scripted execution, the counterexample we found: a payload labelled
*before* its view is established rides in the state-exchange summaries and
is ordered at every member by ``fullorder``; its direct multicast then
arrives afterwards.  Without the ``l ∉ order`` guard the label would be
ordered twice and the payload released to clients twice; with the guard
(our implementation) the run is clean.
"""

import pytest

from repro.core import make_view
from repro.checking import build_closed_to_impl
from repro.checking.trace_props import check_to_trace_properties
from repro.ioa import act
from repro.to.summaries import Label, Summary


UNIVERSE = ["p1", "p2"]


def scripted_execution():
    """Drive the composition through the problematic interleaving.

    p2 broadcasts before establishing view v1, so its label rides in its
    summary; after establishment p2 multicasts the labelled payload
    normally and both members receive it directly as well.
    """
    v0 = make_view(0, UNIVERSE)
    v1 = make_view(1, UNIVERSE)
    system, procs = build_closed_to_impl(
        v0, UNIVERSE, view_pool=[v1], budget=1
    )
    s = system.initial_state()

    def do(*actions):
        nonlocal s
        for action in actions:
            s = system.apply(s, action)

    payload = ("a", "p2", 0)
    do(act("bcast", payload, "p2"))
    do(act("dvs_createview", v1))
    do(act("dvs_newview", v1, "p2"))
    # p2 labels the payload while the view is NOT yet established.
    do(act("label", payload, "p2"))
    label = Label(v1.id, 1, "p2")
    # Build the exact summaries the processes will send.
    app2 = s.part("dvs_to_to:p2")
    summary_p2 = Summary(
        con=frozenset(app2.content), ord=tuple(app2.order),
        next=app2.nextconfirm, high=app2.highprimary,
    )
    do(act("dvs_gpsnd", summary_p2, "p2"))
    do(act("dvs_newview", v1, "p1"))
    app1 = s.part("dvs_to_to:p1")
    summary_p1 = Summary(
        con=frozenset(app1.content), ord=tuple(app1.order),
        next=app1.nextconfirm, high=app1.highprimary,
    )
    do(act("dvs_gpsnd", summary_p1, "p1"))
    # Order and deliver both summaries everywhere -> establishment.
    do(act("dvs_order", summary_p2, "p2", v1.id))
    do(act("dvs_order", summary_p1, "p1", v1.id))
    for receiver in UNIVERSE:
        do(act("dvs_gprcv", summary_p2, "p2", receiver))
        do(act("dvs_gprcv", summary_p1, "p1", receiver))
    # Both established; the label is already in everyone's order via
    # fullorder's remainder.
    for p in UNIVERSE:
        assert label in s.part("dvs_to_to:" + p).order
    # Now p2 multicasts the labelled payload normally.
    do(act("dvs_gpsnd", (label, payload), "p2"))
    do(act("dvs_order", (label, payload), "p2", v1.id))
    for receiver in UNIVERSE:
        do(act("dvs_gprcv", (label, payload), "p2", receiver))
    return system, s, label


class TestGuardPreventsDuplicateOrdering:
    def test_label_ordered_exactly_once(self):
        system, s, label = scripted_execution()
        for p in UNIVERSE:
            order = s.part("dvs_to_to:" + p).order
            assert order.count(label) == 1

    def test_unguarded_append_would_have_duplicated(self):
        """Replay the same interleaving against a variant without the
        guard and observe the duplicate -- demonstrating the
        reconstruction decision is necessary, not stylistic."""
        from repro.to.dvs_to_to import DvsToTo, Summary as _S

        class UnguardedDvsToTo(DvsToTo):
            def eff_dvs_gprcv(self, state, m, q, p):
                if isinstance(m, _S):
                    self._receive_summary(state, m, q)
                else:
                    label, payload = m
                    state.content.add((label, payload))
                    state.order.append(label)  # Figure 5, literally.
                    self._snapshot_order(state)

        import repro.checking.harness as harness
        from repro.checking.drivers import ToClientDriver
        from repro.dvs.spec import DVSSpec
        from repro.ioa.composition import Composition
        from repro.to.impl import DVS_EXTERNAL_ACTIONS, app_component_name

        v0 = make_view(0, UNIVERSE)
        v1 = make_view(1, UNIVERSE)
        dvs = DVSSpec(v0, universe=UNIVERSE, view_pool=[v1])
        apps = [
            UnguardedDvsToTo(p, v0, name=app_component_name(p))
            for p in UNIVERSE
        ]
        clients = [ToClientDriver(p, budget=1) for p in UNIVERSE]
        system = Composition(
            [dvs] + apps + clients,
            hidden=DVS_EXTERNAL_ACTIONS,
            name="unguarded",
        )
        s = system.initial_state()

        def do(*actions):
            nonlocal s
            for action in actions:
                s = system.apply(s, action)

        payload = ("a", "p2", 0)
        do(act("bcast", payload, "p2"))
        do(act("dvs_createview", v1))
        do(act("dvs_newview", v1, "p2"))
        do(act("label", payload, "p2"))
        label = Label(v1.id, 1, "p2")
        app2 = s.part("dvs_to_to:p2")
        summary_p2 = Summary(
            con=frozenset(app2.content), ord=tuple(app2.order),
            next=app2.nextconfirm, high=app2.highprimary,
        )
        do(act("dvs_gpsnd", summary_p2, "p2"))
        do(act("dvs_newview", v1, "p1"))
        app1 = s.part("dvs_to_to:p1")
        summary_p1 = Summary(
            con=frozenset(app1.content), ord=tuple(app1.order),
            next=app1.nextconfirm, high=app1.highprimary,
        )
        do(act("dvs_gpsnd", summary_p1, "p1"))
        do(act("dvs_order", summary_p2, "p2", v1.id))
        do(act("dvs_order", summary_p1, "p1", v1.id))
        for receiver in UNIVERSE:
            do(act("dvs_gprcv", summary_p2, "p2", receiver))
            do(act("dvs_gprcv", summary_p1, "p1", receiver))
        do(act("dvs_gpsnd", (label, payload), "p2"))
        do(act("dvs_order", (label, payload), "p2", v1.id))
        for receiver in UNIVERSE:
            do(act("dvs_gprcv", (label, payload), "p2", receiver))
        assert s.part("dvs_to_to:p1").order.count(label) == 2
