"""Unit tests for the TO service specification."""

import pytest

from repro.ioa import act
from repro.ioa.errors import ActionNotEnabled
from repro.to import TOSpec


@pytest.fixture
def to():
    return TOSpec(["p1", "p2"])


class TestOrdering:
    def test_bcast_buffers(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a", "p1"))
        assert s.pending["p1"] == ["a"]

    def test_order_moves_any_pending(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a1", "p1"))
        s = to.apply(s, act("bcast", "a2", "p1"))
        # Not restricted to the head:
        s = to.apply(s, act("to_order", "a2", "p1"))
        assert s.order == [("a2", "p1")]
        assert s.pending["p1"] == ["a1"]

    def test_order_requires_pending(self, to):
        with pytest.raises(ActionNotEnabled):
            to.apply(to.initial_state(), act("to_order", "x", "p1"))


class TestDelivery:
    def test_prefix_delivery(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a1", "p1"))
        s = to.apply(s, act("bcast", "a2", "p2"))
        s = to.apply(s, act("to_order", "a1", "p1"))
        s = to.apply(s, act("to_order", "a2", "p2"))
        assert not to.is_enabled(s, act("brcv", "a2", "p2", "p1"))
        s = to.apply(s, act("brcv", "a1", "p1", "p1"))
        assert to.is_enabled(s, act("brcv", "a2", "p2", "p1"))

    def test_each_process_has_own_pointer(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a1", "p1"))
        s = to.apply(s, act("to_order", "a1", "p1"))
        s = to.apply(s, act("brcv", "a1", "p1", "p1"))
        assert s.next["p1"] == 2
        assert s.next["p2"] == 1

    def test_attribution_enforced(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a1", "p1"))
        s = to.apply(s, act("to_order", "a1", "p1"))
        assert not to.is_enabled(s, act("brcv", "a1", "p2", "p1"))


class TestCandidates:
    def test_candidates_cover_enabled(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a1", "p1"))
        names = {a.name for a in to.enabled_controlled(s)}
        assert names == {"to_order"}
        s = to.apply(s, act("to_order", "a1", "p1"))
        names = {a.name for a in to.enabled_controlled(s)}
        assert names == {"brcv"}

    def test_duplicate_payloads_deduplicated_in_candidates(self, to):
        s = to.initial_state()
        s = to.apply(s, act("bcast", "a", "p1"))
        s = to.apply(s, act("bcast", "a", "p1"))
        orders = [x for x in to.enabled_controlled(s) if x.name == "to_order"]
        assert orders == [act("to_order", "a", "p1")]
