"""Unit tests for labels, summaries and the recovery functions."""

import pytest

from repro.core.viewids import G0, ViewId
from repro.to.summaries import (
    Label,
    Summary,
    chosenrep,
    fullorder,
    knowncontent,
    maxnextconfirm,
    maxprimary,
    reps,
    shortorder,
)


def lab(epoch, seqno, origin):
    return Label(ViewId(epoch), seqno, origin)


class TestLabelOrdering:
    def test_view_id_dominates(self):
        assert lab(1, 99, "z") < lab(2, 1, "a")

    def test_seqno_next(self):
        assert lab(1, 1, "z") < lab(1, 2, "a")

    def test_origin_breaks_ties(self):
        assert lab(1, 1, "a") < lab(1, 1, "b")

    def test_sortable_and_hashable(self):
        labels = [lab(2, 1, "a"), lab(1, 2, "b"), lab(1, 1, "c")]
        assert sorted(labels) == [lab(1, 1, "c"), lab(1, 2, "b"), lab(2, 1, "a")]
        assert len({lab(1, 1, "a"), lab(1, 1, "a")}) == 1


class TestSummary:
    def test_coercion(self):
        s = Summary(con={(lab(1, 1, "a"), "x")}, ord=[lab(1, 1, "a")],
                    next=1, high=G0)
        assert isinstance(s.con, frozenset)
        assert isinstance(s.ord, tuple)

    def test_hashable(self):
        a = Summary(con=frozenset(), ord=(), next=1, high=G0)
        b = Summary(con=frozenset(), ord=(), next=1, high=G0)
        assert len({a, b}) == 1


def make_gotstate():
    l1, l2, l3 = lab(1, 1, "a"), lab(1, 1, "b"), lab(1, 2, "a")
    return {
        "a": Summary(
            con={(l1, "x"), (l3, "z")}, ord=(l1,), next=2, high=ViewId(1)
        ),
        "b": Summary(
            con={(l1, "x"), (l2, "y")}, ord=(l1, l2), next=1, high=ViewId(2)
        ),
        "c": Summary(con=set(), ord=(), next=1, high=ViewId(2)),
    }, (l1, l2, l3)


class TestRecoveryFunctions:
    def test_knowncontent_unions(self):
        gotstate, (l1, l2, l3) = make_gotstate()
        assert knowncontent(gotstate) == {(l1, "x"), (l2, "y"), (l3, "z")}

    def test_maxprimary(self):
        gotstate, _ = make_gotstate()
        assert maxprimary(gotstate) == ViewId(2)

    def test_maxnextconfirm(self):
        gotstate, _ = make_gotstate()
        assert maxnextconfirm(gotstate) == 2

    def test_reps_and_chosenrep_deterministic(self):
        gotstate, _ = make_gotstate()
        assert reps(gotstate) == {"b", "c"}
        assert chosenrep(gotstate) == "b"

    def test_shortorder_is_reps_order(self):
        gotstate, (l1, l2, _) = make_gotstate()
        assert shortorder(gotstate) == [l1, l2]

    def test_fullorder_appends_remaining_sorted(self):
        gotstate, (l1, l2, l3) = make_gotstate()
        assert fullorder(gotstate) == [l1, l2, l3]

    def test_fullorder_no_duplicates(self):
        gotstate, _ = make_gotstate()
        order = fullorder(gotstate)
        assert len(order) == len(set(order))

    def test_single_member(self):
        l1 = lab(1, 1, "a")
        gotstate = {
            "a": Summary(con={(l1, "x")}, ord=(), next=1, high=G0)
        }
        assert fullorder(gotstate) == [l1]
