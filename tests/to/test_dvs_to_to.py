"""Unit tests for the ``DVS-TO-TO_p`` automaton (Figure 5)."""

import pytest

from repro.core import make_view
from repro.core.viewids import G0, ViewId
from repro.ioa import Kind, act
from repro.to.dvs_to_to import COLLECT, NORMAL, SEND, DvsToTo
from repro.to.summaries import Label, Summary


@pytest.fixture
def app(v0):
    return DvsToTo("p1", v0)


def label(epoch, seqno, origin):
    return Label(ViewId(epoch), seqno, origin)


class TestInitialState:
    def test_member(self, app, v0):
        s = app.initial_state()
        assert s.current == v0
        assert s.status == NORMAL
        assert s.highprimary == G0
        assert s.registered == {G0}
        assert s.established.get(G0) is False

    def test_outsider(self, v0):
        outsider = DvsToTo("p9", v0)
        s = outsider.initial_state()
        assert s.current is None
        assert s.registered == set()


class TestLabelling:
    def test_bcast_then_label(self, app, v0):
        s = app.initial_state()
        s = app.apply(s, act("bcast", "a1", "p1"))
        assert s.delay == ["a1"]
        s = app.apply(s, act("label", "a1", "p1"))
        the_label = Label(v0.id, 1, "p1")
        assert (the_label, "a1") in s.content
        assert s.buffer == [the_label]
        assert s.nextseqno == 2
        assert s.delay == []

    def test_label_requires_view(self, v0):
        outsider = DvsToTo("p9", v0)
        s = outsider.initial_state()
        s = outsider.apply(s, act("bcast", "a1", "p9"))
        assert not outsider.is_enabled(s, act("label", "a1", "p9"))

    def test_labels_fifo_from_delay(self, app):
        s = app.initial_state()
        s = app.apply(s, act("bcast", "a1", "p1"))
        s = app.apply(s, act("bcast", "a2", "p1"))
        assert not app.is_enabled(s, act("label", "a2", "p1"))

    def test_send_requires_normal_status(self, app, v0):
        s = app.initial_state()
        s = app.apply(s, act("bcast", "a1", "p1"))
        s = app.apply(s, act("label", "a1", "p1"))
        the_label = Label(v0.id, 1, "p1")
        assert app.is_enabled(s, act("dvs_gpsnd", (the_label, "a1"), "p1"))
        v1 = make_view(1, {"p1", "p2"})
        s = app.apply(s, act("dvs_newview", v1, "p1"))
        assert s.status == SEND
        assert not app.is_enabled(
            s, act("dvs_gpsnd", (the_label, "a1"), "p1")
        )


class TestNormalDelivery:
    def test_receive_orders_and_confirms(self, app, v0):
        s = app.initial_state()
        l1 = Label(v0.id, 1, "p2")
        s = app.apply(s, act("dvs_gprcv", (l1, "x"), "p2", "p1"))
        assert s.order == [l1]
        assert not app.is_enabled(s, act("confirm", "p1"))
        s = app.apply(s, act("dvs_safe", (l1, "x"), "p2", "p1"))
        assert l1 in s.safe_labels
        s = app.apply(s, act("confirm", "p1"))
        assert s.nextconfirm == 2

    def test_duplicate_label_ordered_once(self, app, v0):
        s = app.initial_state()
        l1 = Label(v0.id, 1, "p2")
        s = app.apply(s, act("dvs_gprcv", (l1, "x"), "p2", "p1"))
        s = app.apply(s, act("dvs_gprcv", (l1, "x"), "p2", "p1"))
        assert s.order == [l1]

    def test_brcv_in_confirmed_order_with_attribution(self, app, v0):
        s = app.initial_state()
        l1 = Label(v0.id, 1, "p2")
        s = app.apply(s, act("dvs_gprcv", (l1, "x"), "p2", "p1"))
        s = app.apply(s, act("dvs_safe", (l1, "x"), "p2", "p1"))
        s = app.apply(s, act("confirm", "p1"))
        assert not app.is_enabled(s, act("brcv", "x", "p1", "p1"))
        assert app.is_enabled(s, act("brcv", "x", "p2", "p1"))
        s = app.apply(s, act("brcv", "x", "p2", "p1"))
        assert s.nextreport == 2

    def test_buildorder_snapshots(self, app, v0):
        s = app.initial_state()
        l1 = Label(v0.id, 1, "p2")
        s = app.apply(s, act("dvs_gprcv", (l1, "x"), "p2", "p1"))
        assert s.buildorder.get(v0.id) == (l1,)


class TestRecovery:
    def setup_view_change(self, app, v0):
        s = app.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = app.apply(s, act("dvs_newview", v1, "p1"))
        return s, v1

    def test_newview_resets(self, app, v0):
        s, v1 = self.setup_view_change(app, v0)
        assert s.status == SEND
        assert s.gotstate == {}
        assert s.buffer == []
        assert s.nextseqno == 1
        assert s.safe_labels == set()

    def test_summary_send_collect(self, app, v0):
        s, v1 = self.setup_view_change(app, v0)
        summary = Summary(con=frozenset(), ord=(), next=1, high=G0)
        assert app.is_enabled(s, act("dvs_gpsnd", summary, "p1"))
        s = app.apply(s, act("dvs_gpsnd", summary, "p1"))
        assert s.status == COLLECT

    def test_establishment(self, app, v0):
        s, v1 = self.setup_view_change(app, v0)
        my = Summary(con=frozenset(), ord=(), next=1, high=G0)
        s = app.apply(s, act("dvs_gpsnd", my, "p1"))
        l_old = Label(v0.id, 1, "p2")
        other = Summary(
            con=frozenset({(l_old, "x")}), ord=(l_old,), next=2,
            high=v0.id,
        )
        s = app.apply(s, act("dvs_gprcv", my, "p1", "p1"))
        assert s.status == COLLECT
        s = app.apply(s, act("dvs_gprcv", other, "p2", "p1"))
        assert s.status == NORMAL
        assert s.established.get(v1.id) is True
        assert s.highprimary == v1.id
        assert s.order == [l_old]
        assert s.nextconfirm == 2  # adopted from the max summary

    def test_register_after_establishment(self, app, v0):
        s, v1 = self.setup_view_change(app, v0)
        assert not app.is_enabled(s, act("dvs_register", "p1"))
        my = Summary(con=frozenset(), ord=(), next=1, high=G0)
        s = app.apply(s, act("dvs_gpsnd", my, "p1"))
        s = app.apply(s, act("dvs_gprcv", my, "p1", "p1"))
        s = app.apply(s, act("dvs_gprcv", my, "p2", "p1"))
        assert app.is_enabled(s, act("dvs_register", "p1"))
        s = app.apply(s, act("dvs_register", "p1"))
        assert v1.id in s.registered
        assert not app.is_enabled(s, act("dvs_register", "p1"))

    def test_safe_exchange_marks_labels(self, app, v0):
        s, v1 = self.setup_view_change(app, v0)
        l_old = Label(v0.id, 1, "p2")
        my = Summary(con=frozenset(), ord=(), next=1, high=G0)
        other = Summary(
            con=frozenset({(l_old, "x")}), ord=(l_old,), next=1, high=v0.id
        )
        s = app.apply(s, act("dvs_gpsnd", my, "p1"))
        s = app.apply(s, act("dvs_gprcv", my, "p1", "p1"))
        s = app.apply(s, act("dvs_gprcv", other, "p2", "p1"))
        s = app.apply(s, act("dvs_safe", my, "p1", "p1"))
        assert s.safe_labels == set()
        s = app.apply(s, act("dvs_safe", other, "p2", "p1"))
        assert l_old in s.safe_labels
