"""Tests for the simplified TO application over SX-DVS (Section 7)."""

import pytest

from repro.checking import (
    check_to_trace_properties,
    random_view_pool,
)
from repro.checking.harness import build_closed_sx_to_impl
from repro.core import make_view
from repro.core.viewids import G0
from repro.ioa import act, run_random
from repro.to.summaries import Label, Summary

UNIVERSE = ["p1", "p2", "p3"]
WEIGHTS = {"dvs_createview": 0.06, "bcast": 1.0}


@pytest.fixture
def v0():
    return make_view(0, UNIVERSE)


class TestUnit:
    def test_sendstate_offers_current_summary(self, v0):
        from repro.to.sx_total_order import SxTotalOrder

        app = SxTotalOrder("p1", v0)
        s = app.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = app.apply(s, act("dvs_newview", v1, "p1"))
        offers = [
            a for a in app.enabled_controlled(s)
            if a.name == "sx_sendstate"
        ]
        assert len(offers) == 1
        summary = offers[0].params[0]
        assert isinstance(summary, Summary)
        s = app.apply(s, offers[0])
        assert s.sent_state
        assert not list(
            a for a in app.enabled_controlled(s)
            if a.name == "sx_sendstate"
        )

    def test_statedelivery_establishes(self, v0):
        from repro.to.sx_total_order import SxTotalOrder

        app = SxTotalOrder("p1", v0)
        s = app.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = app.apply(s, act("dvs_newview", v1, "p1"))
        l_old = Label(v0.id, 1, "p2")
        bundle = (
            ("p1", Summary(con=frozenset(), ord=(), next=1, high=G0)),
            ("p2", Summary(con=frozenset({(l_old, "x")}), ord=(l_old,),
                           next=2, high=v0.id)),
        )
        s = app.apply(s, act("sx_statedelivery", bundle, "p1"))
        assert s.established_current
        assert s.order == [l_old]
        assert s.nextconfirm == 2
        assert s.highprimary == v1.id

    def test_statesafe_confirms_exchanged(self, v0):
        from repro.to.sx_total_order import SxTotalOrder

        app = SxTotalOrder("p1", v0)
        s = app.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = app.apply(s, act("dvs_newview", v1, "p1"))
        l_old = Label(v0.id, 1, "p2")
        bundle = (
            ("p1", Summary(con=frozenset(), ord=(), next=1, high=G0)),
            ("p2", Summary(con=frozenset({(l_old, "x")}), ord=(l_old,),
                           next=1, high=v0.id)),
        )
        s = app.apply(s, act("sx_statedelivery", bundle, "p1"))
        assert l_old not in s.safe_labels
        s = app.apply(s, act("sx_statesafe", "p1"))
        assert l_old in s.safe_labels

    def test_no_recovery_state_machine(self, v0):
        """The Section 7 payoff: no status/gotstate/safe-exch fields."""
        from repro.to.sx_total_order import SxTotalOrder

        app = SxTotalOrder("p1", v0)
        s = app.initial_state()
        assert not hasattr(s, "status")
        assert not hasattr(s, "gotstate")
        assert not hasattr(s, "safe_exch")


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(5))
    def test_total_order_under_churn(self, v0, seed):
        pool = random_view_pool(UNIVERSE, 4, seed=seed + 61, min_size=2)
        system, procs = build_closed_sx_to_impl(
            v0, UNIVERSE, view_pool=pool, budget=3
        )
        ex = run_random(system, 4000, seed=seed, weights=WEIGHTS)
        stats = check_to_trace_properties(ex.trace())
        assert stats["broadcasts"] == 9

    def test_quiet_network_delivers_everything(self, v0):
        system, procs = build_closed_sx_to_impl(v0, UNIVERSE, budget=2)
        ex = run_random(system, 6000, seed=0, weights=WEIGHTS)
        stats = check_to_trace_properties(ex.trace())
        assert stats["deliveries"] == 6 * 3

    def test_recovery_resumes_after_view_change(self, v0):
        v1 = make_view(1, UNIVERSE)
        system, procs = build_closed_sx_to_impl(
            v0, UNIVERSE, view_pool=[v1], budget=2
        )
        ex = run_random(system, 8000, seed=2,
                        weights={"dvs_createview": 0.4, "bcast": 1.0})
        names = [a.name for a in ex.actions()]
        if "dvs_newview" in names:
            assert "sx_statedelivery" in names
        check_to_trace_properties(ex.trace())
