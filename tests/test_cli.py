"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.seeds == 3
        assert args.processes == 3


class TestCommands:
    def test_verify(self, capsys):
        code = main(["verify", "--seeds", "1", "--steps", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "5.1-5.6" in out

    def test_availability(self, capsys):
        code = main(
            ["availability", "--steps", "120", "--processes", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fixed population" in out
        assert "drifting population" in out
        assert "dynamic voting (DVS)" in out

    def test_explore(self, capsys):
        code = main(["explore", "--max-states", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants hold" in out

    def test_isis(self, capsys):
        code = main(["isis", "--seeds", "5", "--steps", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Isis" in out
