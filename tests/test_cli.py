"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.seeds == 3
        assert args.processes == 3


class TestCommands:
    def test_verify(self, capsys):
        code = main(["verify", "--seeds", "1", "--steps", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "5.1-5.6" in out

    def test_availability(self, capsys):
        code = main(
            ["availability", "--steps", "120", "--processes", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fixed population" in out
        assert "drifting population" in out
        assert "dynamic voting (DVS)" in out

    def test_explore(self, capsys):
        code = main(["explore", "--max-states", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants hold" in out

    def test_isis(self, capsys):
        code = main(["isis", "--seeds", "5", "--steps", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Isis" in out


class TestServe:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.processes == 3
        assert args.requests == 60
        assert args.pid is None

    def test_loopback_run_with_crash(self, capsys):
        code = main(["serve", "--requests", "20", "--timeout", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "primary view formed" in out
        assert "killing n3" in out
        assert "rejoined and caught up" in out
        assert "no violations" in out

    def test_loopback_no_kill(self, capsys):
        code = main(
            ["serve", "--requests", "9", "--no-kill", "--timeout", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "killing" not in out
        assert "no violations" in out

    def test_single_node_requires_bind(self):
        with pytest.raises(SystemExit):
            main(["serve", "--pid", "n1"])

    def test_single_node_runs_for_duration(self, capsys):
        code = main(
            ["serve", "--pid", "n1", "--bind", "127.0.0.1:0",
             "--duration", "0.3", "--hb-interval", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n1 listening on 127.0.0.1:" in out
        assert "stopped" in out


class TestChaos:
    def test_healthy_run_is_clean(self, capsys):
        code = main(
            ["chaos", "--seed", "3", "--processes", "4",
             "--plan", "churn", "--duration", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no safety violations" in out
        assert "log digest:" in out

    def test_same_seed_same_digest(self, capsys):
        def digest():
            main(["chaos", "--seed", "5", "--processes", "4",
                  "--plan", "storm", "--duration", "120"])
            out = capsys.readouterr().out
            (line,) = [l for l in out.splitlines()
                       if l.startswith("log digest:")]
            return line

        assert digest() == digest()

    def test_broken_stack_shrinks_to_repro(self, capsys):
        code = main(
            ["chaos", "--seed", "0", "--processes", "5",
             "--plan", "churn", "--duration", "160", "--broken",
             "--max-probes", "40"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "SAFETY VIOLATION" in out
        assert "dvs-4.1-intersection" in out
        assert "replay: python -m repro chaos" in out
        assert "--broken" in out

    def test_plan_json_replay(self, capsys):
        plan = '[[10.0, "crash", ["p1"]], [40.0, "recover", ["p1"]]]'
        code = main(
            ["chaos", "--seed", "1", "--processes", "3",
             "--plan-json", plan, "--duration", "90"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 fault ops" in out


class TestChaosFlagConflicts:
    """Live-only and sim-only flags must fail fast, with exit code 2
    and an error that names the offending flag (satellite: no silent
    misconfiguration of a chaos run)."""

    def _error(self, capsys, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        return capsys.readouterr().err

    def test_record_requires_live(self, capsys):
        err = self._error(
            capsys, ["chaos", "--processes", "3", "--record", "x.trace"]
        )
        assert "--record" in err
        assert "requires --live" in err

    def test_hb_flags_require_live(self, capsys):
        err = self._error(
            capsys, ["chaos", "--processes", "3", "--hb-interval", "0.1"]
        )
        assert "--hb-interval" in err
        assert "requires --live" in err
        err = self._error(
            capsys, ["chaos", "--processes", "3", "--hb-timeout", "0.5"]
        )
        assert "--hb-timeout" in err

    def test_log_limit_is_sim_only(self, capsys):
        err = self._error(
            capsys,
            ["chaos", "--live", "--processes", "3", "--log-limit", "10"],
        )
        assert "--log-limit" in err
        assert "simulated runs only" in err

    def test_conflicts_are_reported_together(self, capsys):
        err = self._error(
            capsys,
            ["chaos", "--processes", "3", "--record", "x.trace",
             "--hb-interval", "0.1"],
        )
        assert "--record" in err and "--hb-interval" in err

    def test_help_marks_mode_specific_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--help"])
        out = capsys.readouterr().out
        assert "[--live only]" in out
        assert "[sim only]" in out


class TestReplayCommand:
    def test_missing_file_is_exit_2(self, capsys):
        code = main(["replay", "/nonexistent/run.trace"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().out

    def test_hostile_file_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_bytes(b"\x00\x00\x00\x02ok")
        code = main(["replay", str(path)])
        assert code == 2
        assert "cannot load trace" in capsys.readouterr().out

    def test_live_record_then_replay_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        code = main(
            ["chaos", "--live", "--processes", "3", "--plan-json", "[]",
             "--duration", "3", "--record", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no safety violations" in out
        assert str(trace) in out
        assert trace.exists()

        code = main(["replay", str(trace), "--check-determinism"])
        assert code == 0
        out = capsys.readouterr().out
        assert "identical digests" in out
        assert "replay digest:" in out
