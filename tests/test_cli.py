"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.seeds == 3
        assert args.processes == 3


class TestCommands:
    def test_verify(self, capsys):
        code = main(["verify", "--seeds", "1", "--steps", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "5.1-5.6" in out

    def test_availability(self, capsys):
        code = main(
            ["availability", "--steps", "120", "--processes", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fixed population" in out
        assert "drifting population" in out
        assert "dynamic voting (DVS)" in out

    def test_explore(self, capsys):
        code = main(["explore", "--max-states", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "invariants hold" in out

    def test_isis(self, capsys):
        code = main(["isis", "--seeds", "5", "--steps", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Isis" in out


class TestServe:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.processes == 3
        assert args.requests == 60
        assert args.pid is None

    def test_loopback_run_with_crash(self, capsys):
        code = main(["serve", "--requests", "20", "--timeout", "30"])
        assert code == 0
        out = capsys.readouterr().out
        assert "primary view formed" in out
        assert "killing n3" in out
        assert "rejoined and caught up" in out
        assert "no violations" in out

    def test_loopback_no_kill(self, capsys):
        code = main(
            ["serve", "--requests", "9", "--no-kill", "--timeout", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "killing" not in out
        assert "no violations" in out

    def test_single_node_requires_bind(self):
        with pytest.raises(SystemExit):
            main(["serve", "--pid", "n1"])

    def test_single_node_runs_for_duration(self, capsys):
        code = main(
            ["serve", "--pid", "n1", "--bind", "127.0.0.1:0",
             "--duration", "0.3", "--hb-interval", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n1 listening on 127.0.0.1:" in out
        assert "stopped" in out


class TestChaos:
    def test_healthy_run_is_clean(self, capsys):
        code = main(
            ["chaos", "--seed", "3", "--processes", "4",
             "--plan", "churn", "--duration", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no safety violations" in out
        assert "log digest:" in out

    def test_same_seed_same_digest(self, capsys):
        def digest():
            main(["chaos", "--seed", "5", "--processes", "4",
                  "--plan", "storm", "--duration", "120"])
            out = capsys.readouterr().out
            (line,) = [l for l in out.splitlines()
                       if l.startswith("log digest:")]
            return line

        assert digest() == digest()

    def test_broken_stack_shrinks_to_repro(self, capsys):
        code = main(
            ["chaos", "--seed", "0", "--processes", "5",
             "--plan", "churn", "--duration", "160", "--broken",
             "--max-probes", "40"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "SAFETY VIOLATION" in out
        assert "dvs-4.1-intersection" in out
        assert "replay: python -m repro chaos" in out
        assert "--broken" in out

    def test_plan_json_replay(self, capsys):
        plan = '[[10.0, "crash", ["p1"]], [40.0, "recover", ["p1"]]]'
        code = main(
            ["chaos", "--seed", "1", "--processes", "3",
             "--plan-json", plan, "--duration", "90"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 fault ops" in out
