"""Unit tests for the primary-component trackers."""

import pytest

from repro.core import make_view
from repro.core.quorums import WeightedMajorityQuorums
from repro.membership import (
    DynamicVotingTracker,
    NaiveDynamicTracker,
    StaticMajorityTracker,
    StaticQuorumTracker,
)

FIVE = ["p1", "p2", "p3", "p4", "p5"]


def v0():
    return make_view(0, FIVE)


def fs(*pids):
    return frozenset(pids)


class TestStaticMajority:
    def test_majority_forms(self):
        t = StaticMajorityTracker(v0())
        primaries = t.observe([fs("p1", "p2", "p3"), fs("p4", "p5")])
        assert len(primaries) == 1
        assert primaries[0].set == fs("p1", "p2", "p3")

    def test_no_majority_no_primary(self):
        t = StaticMajorityTracker(v0())
        assert t.observe([fs("p1", "p2"), fs("p3", "p4")]) == []

    def test_departed_universe_starves(self):
        t = StaticMajorityTracker(v0())
        # Only two originals remain, plus fresh processes.
        assert t.observe([fs("p1", "p2", "q1", "q2", "q3")]) == []

    def test_availability_metric(self):
        t = StaticMajorityTracker(v0())
        t.observe([fs(*FIVE)])
        t.observe([fs("p1", "p2")])
        assert t.availability == 0.5
        assert t.steps_with_primary == 1


class TestStaticQuorum:
    def test_weighted_quorum(self):
        qs = WeightedMajorityQuorums({"p1": 3, "p2": 1, "p3": 1})
        t = StaticQuorumTracker(make_view(0, ["p1", "p2", "p3"]), qs)
        assert t.observe([fs("p1")])  # weight 3 of 5
        assert not t.observe([fs("p2", "p3")])


class TestDynamicVoting:
    def test_adapts_to_shrinking_membership(self):
        t = DynamicVotingTracker(v0())
        assert t.observe([fs("p1", "p2", "p3")])          # majority of 5
        assert t.observe([fs("p1", "p2")])                 # majority of 3
        # But cannot shrink below 2 (strict majority of 2 is 2).
        assert not t.observe([fs("p1")])

    def test_stale_minority_cannot_form(self):
        t = DynamicVotingTracker(v0())
        t.observe([fs("p1", "p2", "p3"), fs("p4", "p5")])
        # p4,p5 still think the 5-member view is current: {p3,p4,p5} IS a
        # majority of it, so it can form -- that is correct and safe
        # (it intersects {p1,p2,p3} at p3).  But {p4,p5} alone cannot.
        assert not t.observe([fs("p1", "p2", "p3"), fs("p4", "p5")])[0:0]
        primaries = t.observe([fs("p1", "p2"), fs("p3", "p4", "p5")])
        # {p1,p2} is a majority of the registered {p1,p2,p3}; {p3,p4,p5}
        # pools p3's knowledge of that same primary and fails against it.
        assert [p.set for p in primaries] == [fs("p1", "p2")]

    def test_register_lag_blocks_until_stable(self):
        t = DynamicVotingTracker(v0(), register_lag=2)
        t.observe([fs("p1", "p2", "p3")])
        # Immediately shrinking again must still check against v0.
        primaries = t.observe([fs("p1", "p2")])
        assert primaries == []  # 2 of 5 fails against unregistered v0

    def test_register_lag_completes_when_stable(self):
        t = DynamicVotingTracker(v0(), register_lag=1)
        t.observe([fs("p1", "p2", "p3")])
        t.observe([fs("p1", "p2", "p3")])  # survives one config -> registered
        primaries = t.observe([fs("p1", "p2")])
        assert [p.set for p in primaries] == [fs("p1", "p2")]

    def test_never_two_disjoint_primaries(self):
        import random

        from repro.analysis import random_churn

        for seed in range(10):
            t = DynamicVotingTracker(
                v0(), register_lag=seed % 3, failure_prob=0.3, seed=seed
            )
            for config in random_churn(FIVE, 300, seed=seed,
                                       partition_prob=0.7):
                t.observe(config)
            assert t.disjoint_primary_incidents() == 0

    def test_fresh_process_knows_initial_view(self):
        t = DynamicVotingTracker(v0())
        primaries = t.observe([fs("p1", "p2", "p3", "q1")])
        assert len(primaries) == 1

    def test_wedging_phenomenon(self):
        """Dynamic voting can wedge: if the last registered primary's
        members depart permanently, no component can ever majority-
        intersect it again -- even one holding a static majority of the
        original universe.  (The price of adaptivity; Jajodia-Mutchler
        observed the same of their scheme.)"""
        t = DynamicVotingTracker(v0())
        assert t.observe([fs("p1", "p2", "p3")])   # shrink to 3 (registered)
        assert t.observe([fs("p1", "p2")])          # shrink to 2 (registered)
        # p1, p2 leave permanently; everyone else reconnects.
        survivors = fs("p3", "p4", "p5")
        for _ in range(5):
            assert t.observe([survivors]) == []     # wedged forever
        # A static majority tracker would have recovered here:
        s = StaticMajorityTracker(v0())
        assert s.observe([survivors])


class TestNaiveDynamic:
    def test_agrees_with_dynamic_when_formations_complete(self):
        from repro.analysis import random_churn

        scenario = random_churn(FIVE, 200, seed=2, partition_prob=0.6)
        naive = NaiveDynamicTracker(v0())
        for config in scenario:
            naive.observe(config)
        assert naive.disjoint_primary_incidents() == 0

    def test_split_brain_under_interrupted_formations(self):
        from repro.analysis import random_churn

        found = False
        for seed in range(20):
            naive = NaiveDynamicTracker(v0(), failure_prob=0.4, seed=seed)
            for config in random_churn(FIVE, 500, seed=seed,
                                       partition_prob=0.7):
                naive.observe(config)
            if naive.disjoint_primary_incidents() > 0:
                found = True
                break
        assert found, "naive dynamic voting never split -- unexpected"

    def test_dynamic_voting_safe_under_same_fault_model(self):
        from repro.analysis import random_churn

        for seed in range(20):
            tracker = DynamicVotingTracker(
                v0(), register_lag=1, failure_prob=0.4, seed=seed
            )
            for config in random_churn(FIVE, 500, seed=seed,
                                       partition_prob=0.7):
                tracker.observe(config)
            assert tracker.disjoint_primary_incidents() == 0
