"""Suppression-comment handling: targeted, bare, and mismatched."""

import time


def stamp():
    return time.time()  # lint: ignore[DVS006]


def stamp_bare():
    return time.time()  # lint: ignore


QUEUE = []  # lint: ignore[DVS010]
MULTI = []  # lint: ignore[DVS006, DVS010]
MISMATCH = []  # lint: ignore[DVS006]
