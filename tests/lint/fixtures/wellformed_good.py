"""Clean pass-1 automata: the negative fixture for DVS001-DVS005."""

from repro.ioa.automaton import TransitionAutomaton


class GoodAutomaton(TransitionAutomaton):
    inputs = frozenset({"ping"})
    outputs = frozenset({"pong"})
    internals = frozenset({"tick"})

    def eff_ping(self, state, p):
        state.inbox.append(p)

    def pre_pong(self, state, p):
        return p in state.inbox

    def eff_pong(self, state, p):
        state.inbox.remove(p)

    def cand_pong(self, state):
        for p in sorted(state.inbox):
            yield ("pong", p)

    def pre_tick(self, state):
        return bool(state.inbox)

    def eff_tick(self, state):
        state.ticks += 1


class DerivedAutomaton(GoodAutomaton):
    """Overrides an effect but inherits its precondition: no DVS001."""

    def eff_pong(self, state, p):
        state.inbox.remove(p)
        state.ticks += 1


def invariant_inbox_bounded(state):
    """A pure invariant: reads only."""
    return len(state.inbox) <= state.ticks + 10
