"""Seeded pass-2 violations (DVS006-DVS009)."""

import os
import random
import time
import uuid
from datetime import datetime


def stamp():
    return time.time()  # expect DVS006


def stamp_dt():
    return datetime.now()  # expect DVS006


def entropy():
    token = uuid.uuid4()  # expect DVS007
    noise = os.urandom(8)  # expect DVS007
    pick = random.choice([1, 2, 3])  # expect DVS007 (global RNG)
    rng = random.Random()  # expect DVS007 (unseeded)
    return token, noise, pick, rng


class Stepper:
    def eff_step(self, state, p):
        for q in {"a", "b", "c"}:  # expect DVS008
            state.order.append(q)
        for key in state.table.keys():  # expect DVS008
            state.order.append(key)

    def cand_step(self, state):
        for q in set(state.members) - {d for d in state.down}:
            # expect DVS008 (set arithmetic)
            yield ("step", q)


def tie_break(xs):
    return sorted(xs, key=id)  # expect DVS009


def address_order(a, b):
    return id(a) < id(b)  # expect DVS009
