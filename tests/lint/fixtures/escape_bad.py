"""Escape fixture (positive): transition effects leaking aliases of
mutable layer state across the layer boundary.  Expects DVS014 at
every marked line.
"""


class TransitionAutomaton:
    """Local stand-in granting the automaton contract."""


class LayerState:
    def __init__(self):
        self.queue = []
        self.seen = set()
        self.label = "x"


class Envelope:
    """A message class: constructing it with state aliases leaks them."""

    def __init__(self, body):
        self.body = body


class BadLayer(TransitionAutomaton):
    inputs = frozenset({"deliver"})
    outputs = frozenset({"emit"})
    internals = frozenset()

    def initial_state(self):
        return LayerState()

    def pre_emit(self, state, m, p):
        return bool(state.queue)

    def eff_deliver(self, state, sink, p):
        sink.push(state.queue)  # expect DVS014: foreign receiver
        sink.backlog = state.seen  # expect DVS014: foreign store

    def eff_emit(self, state, m, p):
        return Envelope(state.queue)  # expect DVS014: message alias
