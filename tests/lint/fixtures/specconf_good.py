"""Conforming spec/impl/layer trio: the negative fixture for DVS022
and DVS027."""

from repro.ioa.automaton import TransitionAutomaton


class DemoSpec(TransitionAutomaton):
    inputs = frozenset({"dvs_gpsnd", "dvs_register"})
    outputs = frozenset({"dvs_newview"})
    internals = frozenset()

    def eff_dvs_gpsnd(self, state, p, m):
        g = state.current_viewid.get(p)
        if g is not None:
            state.pending[g].append((p, m))

    def eff_dvs_register(self, state, p):
        g = state.current_viewid.get(p)
        if g is not None:
            state.registered[g].add(p)

    def pre_dvs_newview(self, state, p, v):
        return v in state.created and p in v.members

    def eff_dvs_newview(self, state, p, v):
        state.current_viewid[p] = v.viewid


class ConformingImpl(TransitionAutomaton):
    """Keeps every external's kind and guards what the spec guards."""

    inputs = frozenset({"dvs_gpsnd", "dvs_register"})
    outputs = frozenset({"dvs_newview"})
    internals = frozenset()

    def eff_dvs_gpsnd(self, state, p, m):
        state.queue.append((p, m))

    def eff_dvs_register(self, state, p):
        state.waiting.add(p)

    def pre_dvs_newview(self, state, p, v):
        return p in state.waiting

    def eff_dvs_newview(self, state, p, v):
        state.current_viewid[p] = v.viewid


class GoodLayer:
    """Every downcall is must-guarded on the enabling attribute."""

    def __init__(self, stack):
        self.stack = stack
        self.cur = None

    def on_dvs_newview(self, view):
        self.cur = view
        self.stack.register()

    def gpsnd(self, payload):
        if self.cur is None:
            return
        self.stack.gpsnd(payload)

    def maybe_register(self, ready):
        if self.cur is not None and ready:
            self.stack.register()
