"""Wire fixture (clean): every stack message matches the codec's pin."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Ping:
    seq: int
    origin: str


@dataclass(frozen=True)
class Pong:
    seq: int
    payload: Tuple[str, int]


@dataclass
class ScratchPad:
    """Not frozen: local bookkeeping, never crosses the wire."""

    notes: str
