"""Wire fixture (clean): registry and pinned schema in sync."""

from dataclasses import dataclass
from types import MappingProxyType

from .messages import Ping, Pong  # noqa: F401 - registry references


@dataclass(frozen=True)
class Probe:
    """A codec-local control message."""

    pid: str


WIRE_TYPES = (Ping, Pong, Probe)

WIRE_SCHEMA = MappingProxyType({
    "Ping": (
        ("seq", "int"),
        ("origin", "str"),
    ),
    "Pong": (
        ("seq", "int"),
        ("payload", "Tuple[str, int]"),
    ),
    "Probe": (
        ("pid", "str"),
    ),
})
