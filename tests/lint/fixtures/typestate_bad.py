"""Seeded protocol-typestate violations: the positive fixture for
DVS023 (fanout port misuse), DVS024 (send after close), DVS025 (late
harness arm) and DVS026 (view-scoped clock leak)."""

from repro.cb.clocks import drain


class DvsFanout:
    def __init__(self, dvs):
        self.dvs = dvs
        self.ports = ()

    def port(self, claims=None):
        self.ports = self.ports + (claims,)
        return self


def build_bad_tower(dvs, tower_cls):
    fanout = DvsFanout(dvs)
    port = fanout.port()
    port.gpsnd("early")  # DVS023: driven before bound to a tower
    fanout.port()  # DVS023: claimed and dropped
    tower = tower_cls(port)
    return tower


def send_after_close(link):
    link.close()
    link.send("bye")  # DVS024: the frame is silently dropped


def stop_then_bcast(stack, summary):
    stack.leave()
    stack.bcast(summary)  # DVS024


class Cluster:
    def __init__(self, n):
        self.n = n
        self.monitor = None
        self.nemesis = None

    def start(self):
        return self

    def bcast(self, payload):
        return payload

    def run(self, duration):
        return duration


def drive_before_start():
    cluster = Cluster(3)
    cluster.bcast("early")  # DVS025: races the boot
    cluster.start()
    cluster.monitor = object()  # DVS025: armed after start
    return cluster


class LeakyLayer:
    """Holds a view-scoped delivery clock but never resets it on a
    view change."""

    def __init__(self):
        self.holdback = []
        self.delivered = ()

    def on_dvs_newview(self, view):
        self.view = view  # DVS026: self.delivered survives the view

    def deliver(self, now):
        released, self.delivered = drain(self.holdback, self.delivered)
        return released
