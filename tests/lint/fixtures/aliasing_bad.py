"""Seeded pass-3 violations (DVS010/DVS011)."""

REGISTRY = {}  # expect DVS010
QUEUE = []  # expect DVS010
SHARED = set()  # expect DVS010
TABLE = dict(a=1)  # expect DVS010
BY_NAME = {n: n for n in ("a", "b")}  # expect DVS010


class Proc:
    peers = []  # expect DVS011
    cache = {}  # expect DVS011
    marks: list = [1, 2]  # expect DVS011 (annotated)

    def __init__(self, pid):
        self.pid = pid
