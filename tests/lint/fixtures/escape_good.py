"""Escape fixture (negative): the same transitions handing over copies
(or immutable attributes).  Must lint clean under DVS014.
"""


class TransitionAutomaton:
    """Local stand-in granting the automaton contract."""


class LayerState:
    def __init__(self):
        self.queue = []
        self.seen = set()
        self.label = "x"


class Envelope:
    def __init__(self, body):
        self.body = body


class GoodLayer(TransitionAutomaton):
    inputs = frozenset({"deliver"})
    outputs = frozenset({"emit"})
    internals = frozenset()

    def initial_state(self):
        return LayerState()

    def pre_emit(self, state, m, p):
        return bool(state.queue)

    def eff_deliver(self, state, sink, p):
        sink.push(list(state.queue))  # a copy crosses, not the alias
        sink.backlog = frozenset(state.seen)
        sink.tag(state.label)  # immutable attr: fine to share

    def eff_emit(self, state, m, p):
        state.queue.append(m)  # own-state mutation is what eff_ is for
        return Envelope(tuple(state.queue))
