"""Clean protocol lifecycles: the negative fixture for DVS023-DVS026.

Also exercises the *must*-semantics: a close or start inside one
branch merges back to unknown, so nothing here may be flagged.
"""

from repro.cb.clocks import drain


class DvsFanout:
    def __init__(self, dvs):
        self.dvs = dvs
        self.ports = ()

    def port(self, claims=None):
        self.ports = self.ports + (claims,)
        return self


def build_good_tower(dvs, tower_cls):
    fanout = DvsFanout(dvs)
    port = fanout.port()
    tower = tower_cls(port)  # bound before any drive
    other = tower_cls(fanout.port())  # claimed and consumed inline
    return tower, other


def close_last(link, payload):
    link.send(payload)
    link.close()


def close_in_one_branch(link, flag):
    if flag:
        link.close()
    link.send("x")  # not must-closed: the other path never closed


def reopened(link):
    link.close()
    link.connect()
    link.send("hello again")


def rebound(link, fresh):
    link.close()
    link = fresh
    link.send("on the new handle")


class Cluster:
    def __init__(self, n):
        self.n = n
        self.monitor = None
        self.nemesis = None

    def start(self):
        return self

    def bcast(self, payload):
        return payload

    def run(self, duration):
        return duration


def arm_then_drive():
    cluster = Cluster(3)
    cluster.monitor = object()  # armed while still CREATED
    cluster.start()
    cluster.bcast("hello")
    return cluster


def context_managed():
    with Cluster(2) as cluster:
        cluster.run(1.0)
    harness = Cluster(4)
    harness.nemesis = object()
    with harness:
        harness.bcast("inside the with")


class TidyLayer:
    """Resets its view-scoped clock on every view change, via a
    helper the handler calls."""

    def __init__(self):
        self.holdback = []
        self.delivered = ()

    def on_dvs_newview(self, view):
        self._flush(view)

    def _flush(self, view):
        self.view = view
        self.delivered = ()
        del self.holdback[:]

    def deliver(self, now):
        released, self.delivered = drain(self.holdback, self.delivered)
        return released
