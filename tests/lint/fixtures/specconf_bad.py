"""Seeded spec-conformance violations: the positive fixture for
DVS022 (unguarded spec send) and DVS027 (spec drift)."""

from repro.ioa.automaton import TransitionAutomaton


class DemoSpec(TransitionAutomaton):
    """The package spec: gpsnd/register are silent no-ops while the
    process has no current view."""

    inputs = frozenset({"dvs_gpsnd", "dvs_register", "dvs_leave"})
    outputs = frozenset({"dvs_newview"})
    internals = frozenset({"dvs_order"})

    def eff_dvs_gpsnd(self, state, p, m):
        g = state.current_viewid.get(p)
        if g is not None:
            state.pending[g].append((p, m))

    def eff_dvs_register(self, state, p):
        g = state.current_viewid.get(p)
        if g is not None:
            state.registered[g].add(p)

    def eff_dvs_leave(self, state, p):
        state.members.discard(p)

    def pre_dvs_newview(self, state, p, v):
        return v in state.created and p in v.members

    def eff_dvs_newview(self, state, p, v):
        state.current_viewid[p] = v.viewid

    def pre_dvs_order(self, state, g, m):
        return m in state.pending[g]

    def eff_dvs_order(self, state, g, m):
        state.ordered[g].append(m)


class DriftImpl(TransitionAutomaton):
    """Drifts from DemoSpec three ways: dvs_gpsnd flipped to an
    output (kind mismatch), dvs_newview effect unguarded while every
    spec transition for it has a precondition, and dvs_leave is
    implemented by nobody in the package."""

    inputs = frozenset()
    outputs = frozenset({"dvs_gpsnd", "dvs_newview", "dvs_register"})
    internals = frozenset()

    def pre_dvs_gpsnd(self, state, p, m):
        return p in state.members

    def eff_dvs_gpsnd(self, state, p, m):
        state.sent.append((p, m))

    def eff_dvs_newview(self, state, p, v):
        state.current_viewid[p] = v.viewid

    def pre_dvs_register(self, state, p):
        return p in state.members

    def eff_dvs_register(self, state, p):
        state.registered.add(p)


class BadLayer:
    """An event-driven layer whose downcalls ignore the spec's
    enabling state: ``self.cur`` may still be ``None``."""

    def __init__(self, stack):
        self.stack = stack
        self.cur = None

    def on_dvs_newview(self, view):
        self.cur = view
        self.stack.register()

    def gpsnd(self, payload):
        # DVS022: DemoSpec.eff_dvs_gpsnd drops this while cur is None.
        self.stack.gpsnd(payload)
