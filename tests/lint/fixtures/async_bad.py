"""Seeded async hazards: every DVS016-DVS019 shape in one file.

Linted with ``runtime_globs`` pointed at this file (see
FIXTURE_CONFIGS in test_rules.py).  Expected findings:

- DVS016 x3: ``time.sleep`` and ``subprocess.run`` inside ``resync``
  (sync, but reachable from the coroutine ``ack``), and
  ``fut.result()`` on a ``run_coroutine_threadsafe`` future awaited
  from inside a coroutine;
- DVS017 x1: ``ensure_future`` result dropped in ``kick``;
- DVS018 x1: ``install`` writes ``self.view`` on both sides of an
  ``await``;
- DVS019 x2: ``grab_ab``/``grab_ba`` acquire the two locks in
  opposite orders.
"""

import asyncio
import subprocess
import time


class TornLayer:
    def __init__(self):
        self.view = None
        self.pending = 0
        self.lock_a = asyncio.Lock()
        self.lock_b = asyncio.Lock()

    def resync(self):
        time.sleep(0.5)
        subprocess.run(["true"])

    async def ack(self, view):
        # Interprocedural: the blocking calls live two hops away.
        self.resync()

    async def install(self, view):
        self.view = ("installing", view)
        await self.ack(view)
        self.view = ("installed", view)

    def kick(self):
        asyncio.ensure_future(self.install(None))

    async def wait_remote(self, loop, coro):
        fut = asyncio.run_coroutine_threadsafe(coro, loop)
        return fut.result()

    async def grab_ab(self):
        async with self.lock_a:
            async with self.lock_b:
                self.pending += 1

    async def grab_ba(self):
        async with self.lock_b:
            async with self.lock_a:
                self.pending -= 1
