"""Parser edge cases: shapes the IR and call graph must digest without
crashing or mis-attributing accesses -- decorated transitions, nested
classes, async defs, walrus targets, try/finally writes.
"""

import functools


def traced(fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)
    return wrapper


class TransitionAutomaton:
    """Local stand-in granting the automaton contract."""


class Outer:
    class Inner:
        """Nested class: methods belong to Inner, not Outer."""

        def __init__(self):
            self.items = []

        def push(self, x):
            self.items.append(x)

    def __init__(self):
        self.inner = Outer.Inner()
        self.count = 0

    async def tick(self):
        self.count += 1

    def walrus(self, xs):
        if (n := len(xs)) > 3:
            self.count = n
        total = 0
        while (chunk := xs[:2]):
            total += len(chunk)
            xs = xs[2:]
        return total

    def guarded(self, fh):
        try:
            data = fh.read()
            self.count += 1
        finally:
            # Writes in finally execute on every path, including the
            # exceptional ones a naive CFG would drop.
            self.count += 1
        return data


class DecoratedAutomaton(TransitionAutomaton):
    inputs = frozenset({"nudge"})
    outputs = frozenset()
    internals = frozenset()

    def initial_state(self):
        return Outer()

    @traced
    def eff_nudge(self, state, p):
        state.count += 1
