"""Seeded pass-1 violations (DVS001-DVS005).  Never imported; the lint
tests parse this file and assert the expected rule ids fire."""

from repro.ioa.automaton import TransitionAutomaton


class BadAutomaton(TransitionAutomaton):
    inputs = frozenset({"ping"})
    outputs = frozenset({"pong"})
    internals = frozenset({"tick"})

    def pre_ping(self, state, p):  # expect DVS002: guards an input
        return state.ready

    def eff_ping(self, state, p):
        state.count += 1

    def eff_pong(self, state, p):  # expect DVS001: no pre_pong
        state.count += 1

    def pre_tick(self, state):
        state.count += 1  # expect DVS004: assignment in a predicate
        state.seen.add(1)  # expect DVS005: mutator in a predicate
        return True

    def eff_tick(self, state):
        state.count += 1

    def cand_tick(self, state):
        state.pending.pop()  # expect DVS005: mutator in a generator
        yield ("tick",)

    def cand_ping(self, state):  # expect DVS003: cand_ for an input
        yield ("ping", "p1")

    def cand_zap(self, state):  # expect DVS003: no such action
        yield ("zap",)
