"""Clean pass-3 code: the negative fixture for DVS010/DVS011."""

from types import MappingProxyType

__all__ = ["Proc"]  # exempt by convention

NAMES = ("a", "b", "c")
GROUP = frozenset({"a", "b"})
TABLE = MappingProxyType({"a": 1})
LIMIT = 16


class Proc:
    names = ("a", "b")
    group = frozenset({"a"})
    limit = 4

    def __init__(self):
        self.peers = []  # per-instance state: allowed
        self.cache = {}
