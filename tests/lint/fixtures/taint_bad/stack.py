"""Fixture automaton: hosted protocol logic outside the runtime globs.

Passing wire-tainted values into ``on_message`` without a validator is
the DVS020 boundary-crossing shape.
"""


class Automaton:
    def __init__(self):
        self.state = {}

    def on_message(self, src, msg):
        self.state[src] = msg
