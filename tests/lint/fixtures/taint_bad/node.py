"""Seeded receive path: wire-tainted values reaching every sink.

Linted with ``runtime_globs`` pointed at this file and ``codec_globs``
at the sibling codec (see FIXTURE_CONFIGS).  Expected findings, all in
``route``:

- DVS020 x3: tainted ``src`` used as a dict-store key, tainted
  ``src``/``msg`` crossing into ``Automaton.on_message``, and tainted
  ``msg`` as a ``call_later`` delay;
- DVS021 x2: ``self.seen`` and ``self.backlog`` grow on the receive
  path with no prune/bound anywhere in the class.
"""

import asyncio

from tests.lint.fixtures.taint_bad.codec import FrameDecoder
from tests.lint.fixtures.taint_bad.stack import Automaton


class BadNode:
    def __init__(self):
        self._decoder = FrameDecoder()
        self.stack = Automaton()
        self.seen = {}
        self.backlog = []
        self._loop = asyncio.get_event_loop()

    def on_bytes(self, data):
        for envelope in self._decoder.feed(data):
            src, msg = envelope
            self.route(src, msg)

    def route(self, src, msg):
        self.seen[src] = msg
        self.backlog.append(msg)
        self.stack.on_message(src, msg)
        self._loop.call_later(msg, self.fire)

    def fire(self):
        return len(self.backlog)
