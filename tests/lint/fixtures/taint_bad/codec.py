"""Fixture codec: the decode entry points taint flows from.

The empty literal registry/pin keep the wire pass (DVS015) satisfied;
this tree only exercises the taint pass.
"""

WIRE_TYPES = ()
WIRE_SCHEMA = {}  # lint: ignore[DVS010]


def decode(data):
    return ("frame", data)


def decode_frame(data):
    return decode(data)


class FrameDecoder:
    def __init__(self):
        self._buffer = b""

    def feed(self, data):
        self._buffer += data
        return [decode(self._buffer)]
