"""Wire fixture (drift): a renamed field, a retyped field, and an
unregistered message."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Ping:
    num: int  # renamed from seq: drift against the pin
    origin: str


@dataclass(frozen=True)
class Pong:
    seq: int
    payload: Tuple[str, str]  # retyped: drift against the pin


@dataclass(frozen=True)
class Nack:
    """Frozen stack message the registry forgot."""

    seq: int
