"""Wire fixture (drift): the pin still describes yesterday's layout."""

from .messages import Ping, Pong  # noqa: F401 - registry references

WIRE_VERSION = 3

WIRE_TYPES = (Ping, Pong)

WIRE_SCHEMA = {
    "Ping": (
        ("seq", "int"),
        ("origin", "str"),
    ),
    "Pong": (
        ("seq", "int"),
        ("payload", "Tuple[str, int]"),
    ),
}
