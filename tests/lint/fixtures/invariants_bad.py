"""Seeded impure-invariant violations (DVS004/DVS005 outside classes)."""


def invariant_counts_match(state):
    state.cache = {}  # expect DVS004
    state.log.append("checked")  # expect DVS005
    return len(state.log) == state.count


def inv_prefix_closed(state):
    del state.scratch["tmp"]  # expect DVS004 (delete)
    return True


def invariant_pure(state):
    return sum(1 for entry in state.log if entry) >= 0
