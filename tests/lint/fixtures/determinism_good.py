"""Clean pass-2 code: the negative fixture for DVS006-DVS009."""

import random


def seeded(seed):
    rng = random.Random(seed)  # seeded plumbing: allowed
    return rng.random()  # instance draw: allowed


class Stepper:
    def eff_step(self, state, p):
        for q in sorted({"a", "b", "c"}):  # sorted: allowed
            state.order.append(q)
        if any(q == p for q in {"a", "b"}):  # order-insensitive sink
            state.seen = True
        total = sum(1 for q in set(state.members))  # order-insensitive
        state.total = total
        fresh = {q for q in set(state.members)}  # builds a set: allowed
        state.fresh = fresh

    def helper(self, state):
        # Not an eff_/pre_/cand_ and not an event-path module, so out
        # of DVS008 scope by design.
        for q in {"x", "y"}:
            state.order.append(q)


def stable_order(xs):
    return sorted(xs, key=str)


def identity_check(a, b):
    return id(a) == id(b)  # equality (not ordering): allowed
