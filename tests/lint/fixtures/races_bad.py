"""Races fixture (positive): a mini sync-facade/event-loop split with
every cross-thread sin the real runtime could commit.

Linted with ``runtime_globs`` pointing here; expects DVS012 at the
unmarshalled reads/writes and DVS013 at the direct loop calls.
"""

import asyncio
import threading


class LoopNode:
    """Loop-owned: has an async method, does not start the thread."""

    def __init__(self):
        self.inbox = []

    async def pump(self):
        self.inbox.append("tick")

    def poke(self):
        self.inbox.append("poke")


class Facade:
    """Sync facade: constructs the thread, public methods are sync."""

    def __init__(self):
        self._loop = None
        self._thread = None
        self._node = None
        self._labels = {}

    def start(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._boot(), self._loop)
        return self

    async def _boot(self):
        self._node = LoopNode()
        self._labels["booted"] = True

    def drain(self):
        return list(self._node.inbox)  # expect DVS012: _node raced

    def label(self, key):
        return self._labels[key]  # expect DVS012: _labels raced

    def poke(self):
        self._node.poke()  # expect DVS013: loop-owned receiver

    def stop(self):
        self._loop.stop()  # expect DVS013: not threadsafe
