"""Clean counterpart of async_bad.py: the same shapes, done right.

Must stay fully clean under every pass.  The facade blocks only on
the *caller* thread (``fut.result`` / ``time.sleep`` in sync methods
never reached from a coroutine), tasks are retained and reaped, the
torn write pair sits on one side of the ``await``, and both lock
users agree on acquisition order.
"""

import asyncio
import threading
import time


class CleanFacade:
    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, daemon=True
        )
        self._tasks = set()
        self.view = None
        self.beats = 0
        self.lock_a = asyncio.Lock()
        self.lock_b = asyncio.Lock()

    def start(self):
        self._thread.start()

    def wait(self, timeout):
        # Blocking on the caller thread is the facade's whole point.
        fut = asyncio.run_coroutine_threadsafe(self._poll(), self._loop)
        return fut.result(timeout)

    def pause(self, seconds):
        time.sleep(seconds)

    async def _poll(self):
        task = asyncio.ensure_future(self._tick())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        await asyncio.sleep(0)

    async def _tick(self):
        await asyncio.sleep(0)
        self.view = ("installed", self.beats)
        self.beats = self.beats + 1

    async def ordered_ab(self):
        async with self.lock_a:
            async with self.lock_b:
                return self.view

    async def ordered_ab_again(self):
        async with self.lock_a:
            async with self.lock_b:
                return self.beats
