"""Fixture automaton for the clean receive path: only validated
values ever reach ``on_message`` (the gate lives in node.py)."""


class Automaton:
    def __init__(self):
        self.state = {}

    def on_message(self, src, msg):
        self.state[src] = msg
