"""Fixture codec for the clean receive path (see taint_good/node.py)."""

WIRE_TYPES = ()
WIRE_SCHEMA = {}  # lint: ignore[DVS010]


def decode(data):
    return ("frame", data)


def decode_frame(data):
    return decode(data)


class FrameDecoder:
    def __init__(self):
        self._buffer = b""

    def feed(self, data):
        self._buffer += data
        return [decode(self._buffer)]
