"""Clean counterpart of taint_bad/node.py: validated, pruned, bounded.

Must stay fully clean: every decoded value passes through
``_validate_frame`` before use, the backlog is a bounded deque, the
``seen`` map has a prune path, and the loop delay is a constant.
"""

import asyncio
from collections import deque

from tests.lint.fixtures.taint_good.codec import FrameDecoder
from tests.lint.fixtures.taint_good.stack import Automaton


class GoodNode:
    def __init__(self):
        self._decoder = FrameDecoder()
        self.stack = Automaton()
        self.seen = {}
        self.backlog = deque(maxlen=64)
        self._loop = asyncio.get_event_loop()

    def on_bytes(self, data):
        for envelope in self._decoder.feed(data):
            src, msg = envelope
            if not self._validate_frame(src, msg):
                continue
            self.route(src, msg)

    def _validate_frame(self, src, msg):
        return isinstance(src, str) and isinstance(msg, tuple)

    def route(self, src, msg):
        self.seen[src] = msg
        self.backlog.append(msg)
        self.stack.on_message(src, msg)
        self._loop.call_later(0.05, self.fire)

    def forget(self, src):
        self.seen.pop(src, None)

    def fire(self):
        return len(self.backlog)
