"""Races fixture (negative): the same facade with every cross-thread
access marshalled through a designated handoff.  Must lint clean under
DVS012/DVS013.
"""

import asyncio
import threading


class LoopNode:
    def __init__(self):
        self.inbox = []

    async def pump(self):
        self.inbox.append("tick")

    def poke(self):
        self.inbox.append("poke")


class Facade:
    def __init__(self):
        self._loop = None
        self._thread = None
        self._node = None
        self._labels = {}

    def start(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(self._boot(), self._loop)
        return self

    async def _boot(self):
        self._node = LoopNode()
        self._labels["booted"] = True

    def drain(self):
        future = asyncio.run_coroutine_threadsafe(
            self._drain_async(), self._loop
        )
        return future.result()

    async def _drain_async(self):
        return list(self._node.inbox)

    def label(self, key):
        future = asyncio.run_coroutine_threadsafe(
            self._label_async(key), self._loop
        )
        return future.result()

    async def _label_async(self, key):
        return self._labels[key]

    def poke(self):
        self._loop.call_soon_threadsafe(lambda: self._node.poke())

    def stop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
