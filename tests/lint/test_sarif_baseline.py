"""SARIF rendering and baseline waiving, library and CLI surfaces."""

import json

from repro.cli import main
from repro.lint import RULES, lint_paths

from tests.lint.conftest import fixture_path


def _bad_report():
    return lint_paths([fixture_path("determinism_bad.py")])


# -- SARIF 2.1.0 -------------------------------------------------------


def test_sarif_document_shape():
    document = json.loads(_bad_report().to_sarif())
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert run["results"], "seeded fixture must produce results"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(set(rule_ids)), "rules sorted and unique"
    for result in run["results"]:
        assert result["level"] == RULES[result["ruleId"]].level
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        # SARIF columns are 1-based; findings carry 0-based cols.
        assert region["startColumn"] >= 1
    assert run["properties"]["engine"]["name"] == "ir-dataflow"


def test_sarif_rules_carry_help_and_pass():
    document = json.loads(_bad_report().to_sarif())
    for rule in document["runs"][0]["tool"]["driver"]["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["help"]["text"]
        assert rule["properties"]["lintPass"]
        configured = rule["defaultConfiguration"]["level"]
        assert configured == RULES[rule["id"]].level


def test_sarif_on_clean_tree_has_no_results():
    report = lint_paths([fixture_path("aliasing_good.py")])
    document = json.loads(report.to_sarif())
    assert document["runs"][0]["results"] == []
    assert document["runs"][0]["tool"]["driver"]["rules"] == []


# -- Baselines ---------------------------------------------------------


def test_baseline_waives_known_findings():
    report = _bad_report()
    assert not report.ok
    rebased = report.apply_baseline(report.to_dict())
    assert rebased.ok
    assert rebased.baselined == len(report.findings)
    assert rebased.files_scanned == report.files_scanned
    assert "waived by the baseline" in rebased.to_text()
    assert rebased.to_dict()["baselined"] == rebased.baselined


def test_baseline_keeps_new_findings():
    report = _bad_report()
    waived = report.findings[0]
    partial = {"findings": [waived.to_dict()]}
    rebased = report.apply_baseline(partial)
    assert rebased.baselined >= 1
    assert len(rebased.findings) == len(report.findings) - (
        rebased.baselined
    )
    assert waived.fingerprint() not in {
        f.fingerprint() for f in rebased.findings
    }


def test_baseline_identity_survives_line_shifts():
    report = _bad_report()
    moved = [
        dict(entry, line=entry["line"] + 7)
        for entry in report.to_dict()["findings"]
    ]
    rebased = report.apply_baseline(moved)
    assert rebased.ok, "line renumbering must not resurrect findings"


# -- CLI surface -------------------------------------------------------


def test_cli_writes_sarif_artifact(tmp_path, capsys):
    artifact = tmp_path / "lint-report.sarif"
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--format", "sarif", "--output", str(artifact),
    ])
    assert code == 1
    document = json.loads(artifact.read_text())
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]
    # The human-readable summary still lands on stdout for CI logs.
    assert "finding(s)" in capsys.readouterr().out


def test_cli_baseline_gates_only_new_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--format", "json", "--output", str(baseline),
    ])
    assert code == 1
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--baseline", str(baseline),
    ])
    assert code == 0
    assert "waived by the baseline" in capsys.readouterr().out
