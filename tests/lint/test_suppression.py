"""``# lint: ignore`` comment handling."""

from repro.lint.engine import suppressions_for


def test_targeted_bare_and_mismatched_suppressions(lint_fixture):
    report = lint_fixture("suppressed.py")
    # Only the mismatched line survives: its comment names DVS006 but
    # the finding there is DVS010.
    (finding,) = report.findings
    assert finding.rule == "DVS010"
    assert "MISMATCH" in finding.message
    assert report.suppressed == 4


def test_suppression_parsing():
    table = suppressions_for([
        "x = 1",
        "y = 2  # lint: ignore",
        "z = 3  # lint: ignore[DVS001]",
        "w = 4  # lint: ignore[DVS001, DVS002]",
        "v = 5  # lint:ignore[DVS003]",
    ])
    assert table == {
        2: frozenset(),
        3: frozenset({"DVS001"}),
        4: frozenset({"DVS001", "DVS002"}),
        5: frozenset({"DVS003"}),
    }


def test_suppressions_do_not_hide_other_lines(lint_fixture):
    report = lint_fixture("aliasing_bad.py")
    assert not report.suppressed
    assert report.findings
