"""Positive and negative coverage for every rule id.

Every rule in the registry must (a) fire on its seeded fixture at the
expected sites and (b) stay silent on the corresponding clean fixture.
"""

import pytest

from repro.lint import RULES, LintConfig, lint_paths
from tests.lint.conftest import findings_for, rule_ids

#: rule id -> (bad fixture, clean fixture that must not trigger it).
RULE_FIXTURES = {
    "DVS001": ("wellformed_bad.py", "wellformed_good.py"),
    "DVS002": ("wellformed_bad.py", "wellformed_good.py"),
    "DVS003": ("wellformed_bad.py", "wellformed_good.py"),
    "DVS004": ("wellformed_bad.py", "wellformed_good.py"),
    "DVS005": ("wellformed_bad.py", "wellformed_good.py"),
    "DVS006": ("determinism_bad.py", "determinism_good.py"),
    "DVS007": ("determinism_bad.py", "determinism_good.py"),
    "DVS008": ("determinism_bad.py", "determinism_good.py"),
    "DVS009": ("determinism_bad.py", "determinism_good.py"),
    "DVS010": ("aliasing_bad.py", "aliasing_good.py"),
    "DVS011": ("aliasing_bad.py", "aliasing_good.py"),
    "DVS012": ("races_bad.py", "races_good.py"),
    "DVS013": ("races_bad.py", "races_good.py"),
    "DVS014": ("escape_bad.py", "escape_good.py"),
    "DVS015": ("wire_drift", "wire_clean"),
    "DVS016": ("async_bad.py", "async_good.py"),
    "DVS017": ("async_bad.py", "async_good.py"),
    "DVS018": ("async_bad.py", "async_good.py"),
    "DVS019": ("async_bad.py", "async_good.py"),
    "DVS020": ("taint_bad", "taint_good"),
    "DVS021": ("taint_bad", "taint_good"),
    "DVS022": ("specconf_bad.py", "specconf_good.py"),
    "DVS023": ("typestate_bad.py", "typestate_good.py"),
    "DVS024": ("typestate_bad.py", "typestate_good.py"),
    "DVS025": ("typestate_bad.py", "typestate_good.py"),
    "DVS026": ("typestate_bad.py", "typestate_good.py"),
    "DVS027": ("specconf_bad.py", "specconf_good.py"),
}

#: Fixtures whose pass gates on path globs need the globs pointed at
#: the fixture tree; everything else lints with the defaults.
FIXTURE_CONFIGS = {
    "races_bad.py": {"runtime_globs": ("*/fixtures/races_bad.py",)},
    "races_good.py": {"runtime_globs": ("*/fixtures/races_good.py",)},
    "wire_drift": {
        "codec_globs": ("*/fixtures/wire_drift/codec.py",),
        "wire_message_globs": ("*/fixtures/wire_drift/messages.py",),
    },
    "wire_clean": {
        "codec_globs": ("*/fixtures/wire_clean/codec.py",),
        "wire_message_globs": ("*/fixtures/wire_clean/messages.py",),
    },
    "async_bad.py": {"runtime_globs": ("*/fixtures/async_bad.py",)},
    "async_good.py": {"runtime_globs": ("*/fixtures/async_good.py",)},
    "taint_bad": {
        "runtime_globs": ("*/fixtures/taint_bad/node.py",),
        "codec_globs": ("*/fixtures/taint_bad/codec.py",),
    },
    "taint_good": {
        "runtime_globs": ("*/fixtures/taint_good/node.py",),
        "codec_globs": ("*/fixtures/taint_good/codec.py",),
    },
}


def _fixture_config(name):
    kwargs = FIXTURE_CONFIGS.get(name)
    return LintConfig(**kwargs) if kwargs is not None else None


def test_every_registered_rule_has_fixture_coverage():
    assert set(RULE_FIXTURES) == set(RULES)


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_fires_on_seeded_fixture(lint_fixture, rule):
    bad, _ = RULE_FIXTURES[rule]
    report = lint_fixture(bad, config=_fixture_config(bad))
    assert rule in rule_ids(report), report.to_text()


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_silent_on_clean_fixture(lint_fixture, rule):
    _, good = RULE_FIXTURES[rule]
    report = lint_fixture(good, config=_fixture_config(good))
    assert rule not in rule_ids(report), report.to_text()


@pytest.mark.parametrize("name", [
    "wellformed_good.py", "determinism_good.py", "aliasing_good.py",
    "races_good.py", "escape_good.py", "wire_clean", "edge_cases.py",
    "async_good.py", "taint_good", "specconf_good.py",
    "typestate_good.py",
])
def test_clean_fixtures_are_fully_clean(lint_fixture, name):
    report = lint_fixture(name, config=_fixture_config(name))
    assert report.ok, report.to_text()


class TestWellformedDetails:
    def test_eff_without_pre_names_the_action(self, lint_fixture):
        report = lint_fixture("wellformed_bad.py")
        (finding,) = findings_for(report, "DVS001")
        assert "'pong'" in finding.message

    def test_input_guard_and_orphans(self, lint_fixture):
        report = lint_fixture("wellformed_bad.py")
        (guard,) = findings_for(report, "DVS002")
        assert "ping" in guard.message
        orphans = findings_for(report, "DVS003")
        assert len(orphans) == 2  # cand_ for an input + unknown action

    def test_predicate_purity_sites(self, lint_fixture):
        report = lint_fixture("wellformed_bad.py")
        assert len(findings_for(report, "DVS004")) == 1
        assert len(findings_for(report, "DVS005")) == 2

    def test_invariant_functions_are_checked(self, lint_fixture):
        report = lint_fixture("invariants_bad.py")
        assert len(findings_for(report, "DVS004")) == 2  # assign + del
        assert len(findings_for(report, "DVS005")) == 1


class TestDeterminismDetails:
    def test_wall_clock_sites(self, lint_fixture):
        report = lint_fixture("determinism_bad.py")
        assert len(findings_for(report, "DVS006")) == 2

    def test_entropy_sites(self, lint_fixture):
        report = lint_fixture("determinism_bad.py")
        assert len(findings_for(report, "DVS007")) == 4

    def test_unsorted_iteration_sites(self, lint_fixture):
        report = lint_fixture("determinism_bad.py")
        assert len(findings_for(report, "DVS008")) == 3

    def test_id_ordering_sites(self, lint_fixture):
        report = lint_fixture("determinism_bad.py")
        assert len(findings_for(report, "DVS009")) == 2


def test_select_restricts_rules(lint_fixture):
    config = LintConfig(select={"DVS010"})
    report = lint_fixture("aliasing_bad.py", config=config)
    assert rule_ids(report) == {"DVS010"}


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError):
        LintConfig(select={"DVS999"})


def test_event_path_modules_widen_dvs008_scope(tmp_path):
    code = (
        "def plain_function(table):\n"
        "    for key in table.keys():\n"
        "        print(key)\n"
    )
    outside = tmp_path / "somewhere.py"
    outside.write_text(code)
    assert lint_paths([str(outside)]).ok

    net_dir = tmp_path / "net"
    net_dir.mkdir()
    inside = net_dir / "simulator.py"
    inside.write_text(code)
    report = lint_paths([str(inside)])
    assert rule_ids(report) == {"DVS008"}
