"""DVS014: the effect alias-escape check on its fixtures, plus the
mutation tying it to the runtime EffectIsolationChecker's discipline:
deleting the ``frozenset`` copy in the real ``VsToDvs.eff_vs_newview``
must reintroduce a finding.
"""

import os

from repro.lint import LintConfig, lint_paths
from repro.lint.engine import iter_python_files
from repro.lint.model import SourceModel
from repro.lint import escape

from tests.lint.conftest import fixture_path, findings_for, rule_ids

ESCAPE_ONLY = LintConfig(select={"DVS014"})


def test_bad_fixture_flags_every_leak():
    report = lint_paths(
        [fixture_path("escape_bad.py")], config=ESCAPE_ONLY
    )
    assert rule_ids(report) == {"DVS014"}
    lines = sorted(f.line for f in findings_for(report, "DVS014"))
    # foreign receiver call, foreign store, message constructor.
    assert lines == [37, 38, 41]
    messages = " ".join(f.message for f in report.findings)
    assert "state.queue" in messages and "state.seen" in messages


def test_good_fixture_is_clean():
    report = lint_paths(
        [fixture_path("escape_good.py")], config=ESCAPE_ONLY
    )
    assert report.ok, report.to_text()


def test_real_tree_is_clean():
    report = lint_paths(["src/repro"], config=ESCAPE_ONLY)
    assert report.ok, report.to_text()


def test_dropping_the_frozenset_copy_reintroduces_the_leak():
    """The static counterpart of gcs/effect_check.py: the InfoMsg a
    view change publishes must carry a frozen copy of ``amb``, never
    the live set."""
    target = os.path.join("src", "repro", "dvs", "vs_to_dvs.py")
    with open(target, "r", encoding="utf-8") as handle:
        source = handle.read()
    original = "InfoMsg(state.act, frozenset(state.amb))"
    assert original in source, "mutation anchor drifted"
    mutated = source.replace(
        original, "InfoMsg(state.act, state.amb)"
    )
    model = SourceModel()
    for path in iter_python_files(["src/repro"]):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        model.add_module(
            path, mutated if path.endswith("vs_to_dvs.py") else text
        )
    findings = escape.run_pass(model, LintConfig())
    assert any(
        f.rule == "DVS014" and "state.amb" in f.message
        and f.path.endswith("vs_to_dvs.py")
        for f in findings
    ), [f.message for f in findings]
