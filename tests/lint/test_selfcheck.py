"""The linter linting itself, and the seeded-violation gate CI runs.

The self-check keeps the analysis code held to its own standard; the
seeded tree asserts the *exact* finding sets, so a regression that
silences a rule (or one that sprays false positives) fails loudly.
"""

from repro.lint import LintConfig, lint_paths

from tests.lint.conftest import fixture_path

#: The seeded fixture tree and the exact findings each file must yield,
#: as (rule, line) pairs.
SEEDED = {
    "races_bad.py": {
        "config": {
            "runtime_globs": ("*/fixtures/races_bad.py",),
            "select": {"DVS012", "DVS013"},
        },
        "expected": {
            ("DVS012", 46),
            ("DVS012", 49),
            ("DVS012", 52),
            ("DVS013", 52),
            ("DVS013", 55),
        },
    },
    "escape_bad.py": {
        "config": {"select": {"DVS014"}},
        "expected": {
            ("DVS014", 37),
            ("DVS014", 38),
            ("DVS014", 41),
        },
    },
    "wire_drift": {
        "config": {
            "select": {"DVS015"},
            "codec_globs": ("*/fixtures/wire_drift/codec.py",),
            "wire_message_globs": (
                "*/fixtures/wire_drift/messages.py",
            ),
        },
        "expected": {
            ("DVS015", 9),
            ("DVS015", 15),
            ("DVS015", 21),
        },
    },
    "async_bad.py": {
        "config": {
            "runtime_globs": ("*/fixtures/async_bad.py",),
            "select": {"DVS016", "DVS017", "DVS018", "DVS019"},
        },
        "expected": {
            ("DVS016", 30),
            ("DVS016", 31),
            ("DVS018", 39),
            ("DVS017", 43),
            ("DVS016", 47),
            ("DVS019", 51),
            ("DVS019", 56),
        },
    },
    "taint_bad": {
        "config": {
            "runtime_globs": ("*/fixtures/taint_bad/node.py",),
            "codec_globs": ("*/fixtures/taint_bad/codec.py",),
            "select": {"DVS020", "DVS021"},
        },
        "expected": {
            ("DVS020", 34),
            ("DVS021", 34),
            ("DVS021", 35),
            ("DVS020", 36),
            ("DVS020", 37),
        },
    },
}


def test_the_linter_lints_itself_clean():
    report = lint_paths(["src/repro/lint"])
    assert report.ok, report.to_text()


def test_seeded_violations_yield_exact_finding_sets():
    for name, spec in SEEDED.items():
        report = lint_paths(
            [fixture_path(name)], config=LintConfig(**spec["config"])
        )
        got = {(f.rule, f.line) for f in report.findings}
        assert got == spec["expected"], (name, report.to_text())
