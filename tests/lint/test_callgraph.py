"""Unit tests for the project call graph: class-attribute points-to,
MRO method resolution, event-loop typing, callback bindings across the
object boundary and subscript folding through containers.
"""

import textwrap

from repro.lint.callgraph import (
    LOOP_CLASS,
    External,
    LoopCall,
    Target,
    build_project,
)
from repro.lint.model import SourceModel

from tests.lint.conftest import fixture_path

PROJECT = """
import asyncio


class Engine:
    def __init__(self, on_frame):
        self._cb = on_frame
        self._loop = asyncio.new_event_loop()

    def fire(self, frame):
        return self._cb(frame)

    def submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def schedule(self, fn):
        self._loop.call_soon_threadsafe(fn)

    def mystery(self, frame):
        return frame.decode()


class Base:
    def ping(self):
        return "base"


class Node(Base):
    def __init__(self):
        self.engine = None
        self._links = {}

    def start(self):
        self.engine = self._build()
        self._links["a"] = Link()

    def poke(self, key):
        self._links[key].peer.ping()

    def check(self):
        return self.ping()

    def _build(self):
        return Engine(self._on_frame)

    def _on_frame(self, frame):
        return frame


class Link:
    def __init__(self):
        self.peer = Base()
"""


def _project():
    model = SourceModel()
    model.add_module("proj/mod.py", textwrap.dedent(PROJECT))
    return build_project(model)


def _resolve(project, klass, method, callee):
    ir = project.classes[klass].methods[method]
    for site in ir.calls:
        if site.callee == callee:
            return project.resolve(site, ir)
    raise AssertionError(
        "no call to {0} in {1}.{2}".format(callee, klass, method)
    )


def test_factory_return_inference_types_the_attribute():
    project = _project()
    assert project.attr_classes("Node", "engine") == {"Engine"}


def test_loop_factories_type_the_loop_attribute():
    project = _project()
    assert project.attr_classes("Engine", "_loop") == {LOOP_CLASS}


def test_mro_resolution_finds_the_inherited_method():
    project = _project()
    (target,) = _resolve(project, "Node", "check", "ping")
    assert isinstance(target, Target)
    assert (target.klass, target.name) == ("Base", "ping")


def test_subscript_folding_through_container_elements():
    project = _project()
    (target,) = _resolve(project, "Node", "poke", "ping")
    assert isinstance(target, Target)
    assert (target.klass, target.name) == ("Base", "ping")


def test_module_aliased_calls_resolve_to_externals():
    project = _project()
    (ext,) = _resolve(
        project, "Engine", "submit", "run_coroutine_threadsafe"
    )
    assert isinstance(ext, External)
    assert ext.dotted == "asyncio.run_coroutine_threadsafe"


def test_calls_on_loop_attributes_become_loop_calls():
    project = _project()
    (call,) = _resolve(
        project, "Engine", "schedule", "call_soon_threadsafe"
    )
    assert isinstance(call, LoopCall)
    assert call.method == "call_soon_threadsafe"


def test_callback_binding_crosses_the_object_boundary():
    project = _project()
    targets = project.callback_targets("Engine", "_cb")
    assert [(t.klass, t.name) for t in targets] == [
        ("Node", "_on_frame")
    ]
    # And the call through the attribute resolves to the same handler.
    (target,) = _resolve(project, "Engine", "fire", "_cb")
    assert (target.klass, target.name) == ("Node", "_on_frame")


def test_unknown_receivers_resolve_to_silence():
    project = _project()
    assert _resolve(project, "Engine", "mystery", "decode") == []


def test_nested_class_methods_belong_to_the_inner_class():
    model = SourceModel()
    with open(fixture_path("edge_cases.py"), encoding="utf-8") as fh:
        model.add_module("edge_cases.py", fh.read())
    project = build_project(model)
    assert "push" in project.classes["Inner"].methods
    assert "push" not in project.classes["Outer"].methods
    assert project.classes["Outer"].has_async_method()
    assert not project.classes["Inner"].has_async_method()


def test_engine_statistics_feed_the_report_header():
    project = _project()
    assert project.function_count() >= 12
    before = project.edges
    _resolve(project, "Node", "check", "ping")
    assert project.edges == before + 1
