"""The JSON report schema (version 2) that CI archives as an artifact."""

import json

from repro.lint import JSON_SCHEMA_VERSION, RULES

REQUIRED_TOP_LEVEL = {
    "version": int,
    "tool": str,
    "ok": bool,
    "files_scanned": int,
    "suppressed": int,
    "excluded": int,
    "baselined": int,
    "engine": dict,
    "counts": dict,
    "findings": list,
}

REQUIRED_FINDING = {
    "rule": str,
    "name": str,
    "level": str,
    "path": str,
    "line": int,
    "col": int,
    "message": str,
    "hint": str,
}


def test_json_schema_on_findings(lint_fixture):
    report = lint_fixture("determinism_bad.py")
    payload = json.loads(report.to_json())
    assert set(payload) == set(REQUIRED_TOP_LEVEL)
    for key, expected_type in REQUIRED_TOP_LEVEL.items():
        assert isinstance(payload[key], expected_type), key
    assert payload["version"] == JSON_SCHEMA_VERSION == 2
    assert payload["tool"] == "repro-lint"
    assert payload["ok"] is False
    assert payload["engine"]["name"] == "ir-dataflow"
    assert "races" in payload["engine"]["passes"]
    assert payload["engine"]["ir_functions"] >= 1
    assert payload["findings"]
    for finding in payload["findings"]:
        assert set(finding) == set(REQUIRED_FINDING)
        for key, expected_type in REQUIRED_FINDING.items():
            assert isinstance(finding[key], expected_type), key
        assert finding["rule"] in RULES
        assert finding["level"] == RULES[finding["rule"]].level
        assert finding["level"] in ("error", "warning", "note")
        assert finding["line"] >= 1
    # counts agree with the finding list
    tally = {}
    for finding in payload["findings"]:
        tally[finding["rule"]] = tally.get(finding["rule"], 0) + 1
    assert payload["counts"] == tally


def test_json_schema_on_clean_tree(lint_fixture):
    payload = json.loads(lint_fixture("aliasing_good.py").to_json())
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["counts"] == {}


def test_findings_sorted_by_location(lint_fixture):
    report = lint_fixture("determinism_bad.py")
    keys = [(f.path, f.line, f.col) for f in report.findings]
    assert keys == sorted(keys)


def test_text_report_mentions_rule_and_hint(lint_fixture):
    report = lint_fixture("aliasing_bad.py")
    text = report.to_text()
    assert "DVS010" in text and "hint:" in text
    assert "finding(s)" in text
