"""DVS012/DVS013: the thread-boundary race detector on its fixtures,
plus the acceptance-critical mutation checks -- deleting any designated
handoff in the real ``runtime/cluster.py`` must reintroduce findings.
"""

import os
import shutil

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.races import _ThreadBoundaryAnalysis
from repro.lint.engine import iter_python_files
from repro.lint.model import SourceModel

from tests.lint.conftest import fixture_path, findings_for, rule_ids

RACE_RULES = frozenset({"DVS012", "DVS013"})

SRC_RUNTIME = os.path.join("src", "repro", "runtime")


def _config(glob):
    return LintConfig(select=RACE_RULES, runtime_globs=(glob,))


def test_bad_fixture_flags_every_unmarshalled_site():
    report = lint_paths(
        [fixture_path("races_bad.py")],
        config=_config("*/fixtures/races_bad.py"),
    )
    assert rule_ids(report) == {"DVS012", "DVS013"}
    dvs012_lines = {f.line for f in findings_for(report, "DVS012")}
    dvs013_lines = {f.line for f in findings_for(report, "DVS013")}
    # drain() and label() read loop-written state on the caller thread.
    assert {46, 49} <= dvs012_lines
    # poke() calls a loop-owned method, stop() a non-threadsafe loop API.
    assert {52, 55} == dvs013_lines


def test_good_fixture_is_clean():
    report = lint_paths(
        [fixture_path("races_good.py")],
        config=_config("*/fixtures/races_good.py"),
    )
    assert report.ok, report.to_text()


def test_findings_carry_the_loop_side_site():
    report = lint_paths(
        [fixture_path("races_bad.py")],
        config=_config("*/fixtures/races_bad.py"),
    )
    finding = findings_for(report, "DVS012")[0]
    assert "races_bad.py:" in finding.message
    assert "designated handoff" in finding.message


def test_classification_of_the_real_runtime():
    model = SourceModel()
    for path in iter_python_files(["src/repro"]):
        with open(path, "r", encoding="utf-8") as handle:
            model.add_module(path, handle.read())
    analysis = _ThreadBoundaryAnalysis(model, LintConfig())
    analysis.run()
    assert [cls.name for cls in analysis.facades] == ["RuntimeCluster"]
    # The loop side closes over the hosted layer stack.
    assert {"RuntimeNode", "PeerLink", "Listener", "ToLayer"} <= (
        analysis.loop_owned
    )
    assert "RuntimeCluster" not in analysis.loop_owned


# -- Handoff-deletion mutations on the real cluster -------------------

_MUTATIONS = {
    "stop_wrap": (
        "self._loop.call_soon_threadsafe(self._loop.stop)",
        "self._loop.stop()",
        {"DVS013"},
    ),
    "bcast_wrap": (
        "self._call(call, timeout=timeout)",
        "self._nodes[pid].to.bcast(payload)",
        {"DVS012"},
    ),
    "kill_wrap": (
        "self._call(self._kill_async, pid, timeout=timeout)",
        "self._nodes.pop(pid)",
        {"DVS012"},
    ),
}


@pytest.mark.parametrize("name", sorted(_MUTATIONS))
def test_deleting_a_handoff_reintroduces_findings(tmp_path, name):
    """Acceptance: un-marshalling any cluster operation is reported."""
    original, replacement, expected_rules = _MUTATIONS[name]
    tree = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC_RUNTIME, tree)
    cluster = tree / "cluster.py"
    source = cluster.read_text()
    assert original in source, "mutation anchor drifted"
    cluster.write_text(source.replace(original, replacement))
    report = lint_paths([str(tmp_path)], config=LintConfig(
        select=RACE_RULES,
    ))
    assert expected_rules <= rule_ids(report), report.to_text()
    assert all(f.path.endswith("cluster.py") for f in report.findings)


def test_bcast_unwrap_flags_the_loop_owned_call():
    """With the hosted layers in view, un-marshalling bcast() is also a
    DVS013: the points-to closure resolves _nodes[pid].to to the
    loop-owned ToLayer."""
    with open(os.path.join(SRC_RUNTIME, "cluster.py"),
              encoding="utf-8") as handle:
        source = handle.read()
    original = "self._call(call, timeout=timeout)"
    assert original in source, "mutation anchor drifted"
    mutated = source.replace(
        original, "self._nodes[pid].to.bcast(payload)"
    )
    model = SourceModel()
    for path in iter_python_files(["src/repro"]):
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith(os.path.join("runtime", "cluster.py")):
            text = mutated
        model.add_module(path, text)
    analysis = _ThreadBoundaryAnalysis(model, LintConfig())
    findings = analysis.run()
    assert any(
        f.rule == "DVS013" and "ToLayer.bcast" in f.message
        for f in findings
    ), [f.message for f in findings]


def test_unmutated_runtime_is_clean():
    report = lint_paths(["src/repro"], config=LintConfig(
        select=RACE_RULES,
    ))
    assert report.ok, report.to_text()
