"""The ``repro lint`` CLI subcommand."""

import json

from repro.cli import main
from tests.lint.conftest import fixture_path


def test_lint_cli_clean_exits_zero(capsys):
    code = main(["lint", fixture_path("aliasing_good.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_lint_cli_findings_exit_nonzero(capsys):
    code = main(["lint", fixture_path("aliasing_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "DVS010" in out and "DVS011" in out


def test_lint_cli_json_output_file(tmp_path, capsys):
    target = tmp_path / "report.json"
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--format", "json", "--output", str(target),
    ])
    assert code == 1
    payload = json.loads(target.read_text())
    assert payload["tool"] == "repro-lint"
    assert payload["findings"]
    # the human summary still lands on stdout for CI logs
    assert "finding(s)" in capsys.readouterr().out


def test_lint_cli_select(capsys):
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--select", "DVS006",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "DVS006" in out and "DVS007" not in out


def test_lint_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DVS001", "DVS011"):
        assert rule_id in out


def test_lint_cli_multiple_paths(capsys):
    code = main([
        "lint",
        fixture_path("aliasing_good.py"),
        fixture_path("determinism_good.py"),
    ])
    assert code == 0
    assert "2 file(s)" in capsys.readouterr().out


# -- --changed: diff-scoped pre-commit runs ----------------------------


def _git(tmp_path, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t"]
        + list(argv),
        cwd=str(tmp_path), check=True, capture_output=True,
    )


def _changed_repo(tmp_path):
    """A repo where bad.py's finding predates HEAD and only clean.py
    is touched by the working diff."""
    (tmp_path / "bad.py").write_text(
        "SHARED = {}\n"  # DVS010: module-level mutable
    )
    (tmp_path / "clean.py").write_text("def noop():\n    return 1\n")
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    (tmp_path / "clean.py").write_text("def noop():\n    return 2\n")
    return tmp_path


def test_lint_cli_changed_scopes_to_the_diff(tmp_path, monkeypatch,
                                             capsys):
    repo = _changed_repo(tmp_path)
    monkeypatch.chdir(repo)
    # bad.py is untouched, so its (pre-existing) finding is out of
    # scope -- the tree is still parsed, only reporting is focused.
    code = main(["lint", str(repo), "--changed"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "focused on 1 changed file(s)" in out
    # The unfocused run still gates on the whole tree.
    assert main(["lint", str(repo)]) == 1


def test_lint_cli_changed_catches_new_findings(tmp_path, monkeypatch,
                                               capsys):
    repo = _changed_repo(tmp_path)
    (repo / "clean.py").write_text("ALSO_SHARED = {}\n")
    monkeypatch.chdir(repo)
    code = main(["lint", str(repo), "--changed"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DVS010" in out and "clean.py" in out
    assert "bad.py" not in out.split("focused on")[-1]


def test_lint_cli_changed_with_clean_diff_exits_zero(tmp_path,
                                                     monkeypatch,
                                                     capsys):
    repo = _changed_repo(tmp_path)
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "sync")
    monkeypatch.chdir(repo)
    code = main(["lint", str(repo), "--changed"])
    assert code == 0
    assert "no python files changed" in capsys.readouterr().out
