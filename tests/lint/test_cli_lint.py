"""The ``repro lint`` CLI subcommand."""

import json

from repro.cli import main
from tests.lint.conftest import fixture_path


def test_lint_cli_clean_exits_zero(capsys):
    code = main(["lint", fixture_path("aliasing_good.py")])
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out


def test_lint_cli_findings_exit_nonzero(capsys):
    code = main(["lint", fixture_path("aliasing_bad.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "DVS010" in out and "DVS011" in out


def test_lint_cli_json_output_file(tmp_path, capsys):
    target = tmp_path / "report.json"
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--format", "json", "--output", str(target),
    ])
    assert code == 1
    payload = json.loads(target.read_text())
    assert payload["tool"] == "repro-lint"
    assert payload["findings"]
    # the human summary still lands on stdout for CI logs
    assert "finding(s)" in capsys.readouterr().out


def test_lint_cli_select(capsys):
    code = main([
        "lint", fixture_path("determinism_bad.py"),
        "--select", "DVS006",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "DVS006" in out and "DVS007" not in out


def test_lint_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DVS001", "DVS011"):
        assert rule_id in out


def test_lint_cli_multiple_paths(capsys):
    code = main([
        "lint",
        fixture_path("aliasing_good.py"),
        fixture_path("determinism_good.py"),
    ])
    assert code == 0
    assert "2 file(s)" in capsys.readouterr().out
