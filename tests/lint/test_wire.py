"""DVS015: wire-schema drift on the fixture trees and the real codec."""

import os

from repro.lint import LintConfig, lint_paths

from tests.lint.conftest import fixture_path, findings_for, rule_ids


def _config(tree):
    return LintConfig(
        select={"DVS015"},
        codec_globs=("*/fixtures/{0}/codec.py".format(tree),),
        wire_message_globs=("*/fixtures/{0}/messages.py".format(tree),),
    )


def test_clean_tree_has_no_drift():
    report = lint_paths(
        [fixture_path("wire_clean")], config=_config("wire_clean")
    )
    assert report.ok, report.to_text()


def test_drifted_tree_reports_every_divergence():
    report = lint_paths(
        [fixture_path("wire_drift")], config=_config("wire_drift")
    )
    assert rule_ids(report) == {"DVS015"}
    messages = [f.message for f in findings_for(report, "DVS015")]
    # Renamed field (Ping.seq -> num) and retyped field (Pong.payload).
    assert any("Ping" in m and "num: int" in m for m in messages)
    assert any("Pong" in m and "Tuple[str, str]" in m for m in messages)
    # Unregistered frozen message.
    assert any("Nack" in m and "not registered" in m for m in messages)
    assert len(messages) == 3
    # Drift is reported at the dataclass definitions, not the codec.
    drift_paths = {
        f.path for f in report.findings if "wire drift" in f.message
    }
    assert all(p.endswith("messages.py") for p in drift_paths)


def test_findings_carry_schema_version_context():
    """DVS015 findings are stamped with the codec's WIRE_VERSION, so
    their baseline fingerprints are version-scoped."""
    report = lint_paths(
        [fixture_path("wire_drift")], config=_config("wire_drift")
    )
    assert report.findings
    assert all(f.context == "wire-schema-v3" for f in report.findings)
    assert all(
        f.fingerprint() == (f.rule, f.path, f.message, "wire-schema-v3")
        for f in report.findings
    )
    assert all(
        entry["context"] == "wire-schema-v3"
        for entry in report.to_dict()["findings"]
    )


def test_schema_bump_retires_stale_baseline_entries():
    """A baseline recorded against the previous wire version must not
    waive the same drift re-surfacing after a version bump."""
    report = lint_paths(
        [fixture_path("wire_drift")], config=_config("wire_drift")
    )
    assert not report.ok
    stale = [
        dict(entry, context="wire-schema-v2")
        for entry in report.to_dict()["findings"]
    ]
    rebased = report.apply_baseline(stale)
    assert len(rebased.findings) == len(report.findings)
    assert rebased.baselined == 0
    # The matching version does waive them.
    current = report.apply_baseline(report.to_dict())
    assert current.ok
    assert current.baselined == len(report.findings)


def test_legacy_baseline_entries_without_context_still_apply():
    """Baselines written before the context field exist: entries with
    no ``context`` key match findings with an empty context."""
    from repro.lint.report import Finding, Report

    finding = Finding(
        rule="DVS001", path="src/x.py", line=3, col=0,
        message="some message",
    )
    report = Report([finding], files_scanned=1)
    legacy_entry = {k: v for k, v in finding.to_dict().items()}
    assert "context" not in legacy_entry
    rebased = report.apply_baseline([legacy_entry])
    assert rebased.ok
    assert rebased.baselined == 1


def test_missing_registry_is_reported(tmp_path):
    codec = tmp_path / "codec.py"
    codec.write_text('"""codec without a registry."""\nX = 1\n')
    report = lint_paths([str(tmp_path)], config=LintConfig(
        select={"DVS015"},
        codec_globs=("*/codec.py",),
        wire_message_globs=(),
    ))
    assert [f.rule for f in report.findings] == ["DVS015"]
    assert "no WIRE_TYPES registry" in report.findings[0].message


def test_real_codec_is_pinned_and_clean():
    report = lint_paths(["src/repro"], config=LintConfig(
        select={"DVS015"},
    ))
    assert report.ok, report.to_text()


def test_renaming_a_real_wire_field_reports_drift(tmp_path):
    """Acceptance: retyping/renaming any field of a wire dataclass is
    reported against the codec's pin."""
    import shutil

    tree = tmp_path / "repro"
    shutil.copytree(os.path.join("src", "repro"), tree)
    target = tree / "gcs" / "messages.py"
    source = target.read_text()
    assert "vid: ViewId" in source
    target.write_text(source.replace("vid: ViewId", "view_id: ViewId"))
    report = lint_paths([str(tmp_path)], config=LintConfig(
        select={"DVS015"},
    ))
    assert not report.ok
    assert all(f.rule == "DVS015" for f in report.findings)
    assert any(
        "wire drift" in f.message and f.path.endswith("messages.py")
        for f in report.findings
    ), report.to_text()
