"""Per-package rule exclusion (``LintConfig.rule_excludes``)."""

import pytest

from repro.lint import (
    DEFAULT_RULE_EXCLUDES,
    LintConfig,
    lint_paths,
)
from tests.lint.conftest import fixture_path


def _config(excludes):
    return LintConfig(rule_excludes=excludes)


def test_no_package_is_excluded_by_default():
    # The shipped policy: no blanket package exemptions.  The runtime
    # package's wall-clock and entropy sites carry line-scoped
    # ``# lint: ignore[...]`` pragmas instead, so every new finding in
    # the package is visible.
    assert set(DEFAULT_RULE_EXCLUDES) == set()
    config = LintConfig()
    assert not config.excluded("DVS006", "src/repro/runtime/serve.py")
    assert not config.excluded("DVS007", "src/repro/runtime/transport.py")
    # The mechanism still works when configured explicitly.
    scoped = _config({"DVS006": ("*/repro/runtime/*.py",)})
    assert scoped.excluded("DVS006", "src/repro/runtime/serve.py")
    assert not scoped.excluded("DVS006", "src/repro/gcs/to_layer.py")
    assert not scoped.excluded("DVS010", "src/repro/runtime/codec.py")


def test_exclusion_drops_findings_and_counts_them(lint_fixture):
    baseline = lint_fixture("determinism_bad.py")
    wallclock = [f for f in baseline.findings if f.rule == "DVS006"]
    assert wallclock, "fixture must trigger DVS006"

    report = lint_paths(
        [fixture_path("determinism_bad.py")],
        config=_config({"DVS006": ("*/fixtures/*.py",)}),
    )
    assert not any(f.rule == "DVS006" for f in report.findings)
    assert report.excluded == len(wallclock)
    # Non-excluded rules are untouched.
    assert (
        len([f for f in report.findings if f.rule == "DVS007"])
        == len([f for f in baseline.findings if f.rule == "DVS007"])
    )


def test_exclusion_is_path_scoped(lint_fixture):
    report = lint_paths(
        [fixture_path("determinism_bad.py")],
        config=_config({"DVS006": ("*/some/other/package/*.py",)}),
    )
    baseline = lint_fixture("determinism_bad.py")
    assert (
        len([f for f in report.findings if f.rule == "DVS006"])
        == len([f for f in baseline.findings if f.rule == "DVS006"])
    )
    assert report.excluded == 0


def test_excluded_count_surfaces_in_renderings(lint_fixture):
    report = lint_paths(
        [fixture_path("determinism_bad.py")],
        config=_config({
            "DVS006": ("*/fixtures/*.py",),
            "DVS007": ("*/fixtures/*.py",),
        }),
    )
    assert report.excluded > 0
    assert "configured off" in report.to_text()
    assert report.to_dict()["excluded"] == report.excluded


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule id"):
        _config({"DVS999": ("*/x.py",)})


def test_excludes_differ_from_pragmas(lint_fixture):
    # An exclusion is a package policy, not a line suppression: the
    # suppressed counter is unaffected.
    report = lint_paths(
        [fixture_path("determinism_bad.py")],
        config=_config({"DVS006": ("*/fixtures/*.py",)}),
    )
    assert report.suppressed == 0
