"""The incremental cache: cone keys, invalidation, warm-run speed and
``changed_only`` narrowing."""

import json
import os
import textwrap
import time

import pytest

from repro.lint import LintCache, LintConfig, cone_of, lint_paths
from repro.lint.cache import (
    MANIFEST_NAME,
    augmented_graph,
    config_fingerprint,
    direct_deps,
    engine_fingerprint,
)

from tests.lint.conftest import FIXTURES


def _write_tree(root, files):
    paths = {}
    for relative, source in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
        paths[relative] = str(target)
    return paths


#: a.py imports b.py; c.py stands alone.  The workhorse layout.
CHAIN = {
    "pkg/__init__.py": "",
    "pkg/a.py": """
        from pkg.b import helper

        def use(link):
            return helper(link)
    """,
    "pkg/b.py": """
        def helper(link):
            link.close()
            link.send("late")
    """,
    "pkg/c.py": """
        def standalone():
            return 1
    """,
}


def _cache_info(report):
    return report.engine["cache"]


# -- Dependency extraction and cones -----------------------------------


class TestDependencyGraph:
    def test_absolute_import_resolves_by_suffix(self, tmp_path):
        paths = _write_tree(tmp_path, CHAIN)
        files = [os.path.normpath(p) for p in paths.values()]
        a = os.path.normpath(paths["pkg/a.py"])
        source = open(a).read()
        assert direct_deps(a, source, files) == [
            os.path.normpath(paths["pkg/b.py"])
        ]

    def test_relative_import_resolves_against_the_package(self, tmp_path):
        paths = _write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/x.py": "from .y import thing\n",
            "pkg/y.py": "thing = 1\n",
        })
        files = [os.path.normpath(p) for p in paths.values()]
        x = os.path.normpath(paths["pkg/x.py"])
        assert direct_deps(x, open(x).read(), files) == [
            os.path.normpath(paths["pkg/y.py"])
        ]

    def test_cone_is_the_transitive_closure(self):
        graph = {"a": ["b"], "b": ["c"], "c": [], "d": []}
        assert cone_of("a", graph) == {"a", "b", "c"}
        assert cone_of("c", graph) == {"c"}

    def test_spec_modules_couple_the_tree(self, tmp_path):
        paths = _write_tree(tmp_path, {
            "pkg/spec.py": "",
            "pkg/impl.py": "",
            "other/far.py": "",
        })
        files = sorted(os.path.normpath(p) for p in paths.values())
        graph = augmented_graph(
            {path: [] for path in files}, LintConfig()
        )
        spec = os.path.normpath(paths["pkg/spec.py"])
        impl = os.path.normpath(paths["pkg/impl.py"])
        far = os.path.normpath(paths["other/far.py"])
        # Every file depends on the spec (DVS022 vocabulary)...
        assert spec in graph[impl] and spec in graph[far]
        # ...and the spec depends on its own package's impls (DVS027
        # reports at the spec) but not on far-away files.
        assert impl in graph[spec]
        assert far not in graph[spec]


# -- Hit/miss behaviour ------------------------------------------------


class TestWarmAndCold:
    def test_second_run_is_fully_warm(self, tmp_path):
        _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        assert _cache_info(cold)["misses"] == 4
        warm = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        assert _cache_info(warm) == {
            "dir": cache_dir, "hits": 4, "misses": 0,
            "analyzed": 0, "changed_only": False,
        }

    def test_warm_run_reports_the_cached_findings(self, tmp_path):
        _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        warm = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert {f.rule for f in warm.findings} == {"DVS024"}

    def test_config_change_rekeys_every_cone(self, tmp_path):
        _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        other = LintConfig(select={"DVS024"})
        assert config_fingerprint(other) != config_fingerprint(
            LintConfig()
        )
        report = lint_paths(
            [str(tmp_path / "tree")], config=other, cache_dir=cache_dir
        )
        assert _cache_info(report)["misses"] == 4

    def test_engine_change_discards_the_manifest(self, tmp_path):
        _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = tmp_path / "cache"
        lint_paths([str(tmp_path / "tree")], cache_dir=str(cache_dir))
        manifest = cache_dir / MANIFEST_NAME
        data = json.loads(manifest.read_text())
        data["engine"] = "an-older-analyzer"
        manifest.write_text(json.dumps(data))
        report = lint_paths(
            [str(tmp_path / "tree")], cache_dir=str(cache_dir)
        )
        assert _cache_info(report)["misses"] == 4

    def test_deleted_files_are_pruned_from_the_manifest(self, tmp_path):
        paths = _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = tmp_path / "cache"
        lint_paths([str(tmp_path / "tree")], cache_dir=str(cache_dir))
        os.unlink(paths["pkg/c.py"])
        report = lint_paths(
            [str(tmp_path / "tree")], cache_dir=str(cache_dir)
        )
        assert report.files_scanned == 3
        data = json.loads((cache_dir / MANIFEST_NAME).read_text())
        assert not any("c.py" in path for path in data["files"])

    def test_suppressions_are_reapplied_over_cached_findings(
        self, tmp_path
    ):
        tree = {
            "mod.py": """
                def f(link, m):
                    link.close()
                    link.send(m)  # lint: ignore[DVS024]
            """,
        }
        _write_tree(tmp_path / "tree", tree)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        assert cold.ok and cold.suppressed == 1
        warm = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        # The cache stores *raw* findings: the pragma is honoured again
        # on the warm run without any re-analysis.
        assert _cache_info(warm)["analyzed"] == 0
        assert warm.ok and warm.suppressed == 1


# -- changed_only ------------------------------------------------------


class TestChangedOnly:
    def test_requires_a_cache(self):
        with pytest.raises(ValueError):
            lint_paths(["whatever"], changed_only=True)

    def test_one_file_edit_analyzes_only_its_cone(self, tmp_path):
        paths = _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        with open(paths["pkg/b.py"], "a") as handle:
            handle.write("\nEXTRA = 1\n")
        report = lint_paths(
            [str(tmp_path / "tree")],
            cache_dir=cache_dir,
            changed_only=True,
        )
        info = _cache_info(report)
        # b.py changed; a.py imports it so its cone key missed too.
        # __init__.py and c.py stay warm, and the analysis touches
        # exactly the dirty files' dependency cones: {a, b}.
        assert info["misses"] == 2
        assert info["hits"] == 2
        assert info["analyzed"] == 2
        assert info["changed_only"] is True

    def test_cached_findings_stay_authoritative_for_clean_files(
        self, tmp_path
    ):
        tree = dict(CHAIN)
        tree["pkg/c.py"] = """
            def closes(link, m):
                link.close()
                link.send(m)
        """
        paths = _write_tree(tmp_path / "tree", tree)
        cache_dir = str(tmp_path / "cache")
        cold = lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        assert len(cold.findings) == 2  # b.py and c.py
        with open(paths["pkg/a.py"], "a") as handle:
            handle.write("\nEXTRA = 1\n")
        report = lint_paths(
            [str(tmp_path / "tree")],
            cache_dir=cache_dir,
            changed_only=True,
        )
        # c.py was not re-analyzed, yet its cached finding still gates.
        assert _cache_info(report)["analyzed"] == 2
        assert {f.rule for f in report.findings} == {"DVS024"}
        assert len(report.findings) == 2

    def test_edit_that_introduces_a_finding_is_caught(self, tmp_path):
        paths = _write_tree(tmp_path / "tree", CHAIN)
        cache_dir = str(tmp_path / "cache")
        lint_paths([str(tmp_path / "tree")], cache_dir=cache_dir)
        with open(paths["pkg/c.py"], "w") as handle:
            handle.write(
                "def broken(link, m):\n"
                "    link.close()\n"
                "    link.send(m)\n"
            )
        report = lint_paths(
            [str(tmp_path / "tree")],
            cache_dir=cache_dir,
            changed_only=True,
        )
        assert _cache_info(report)["analyzed"] == 1
        assert any(
            f.rule == "DVS024" and f.path.endswith("c.py")
            for f in report.findings
        )


# -- Parallel parity and warm-run speed --------------------------------


class TestJobsAndSpeed:
    def test_forked_passes_match_serial_findings(self):
        target = os.path.join(FIXTURES, "typestate_bad.py")
        serial = lint_paths([target], jobs=1)
        forked = lint_paths([target], jobs=4)
        assert [f.to_dict() for f in forked.findings] == [
            f.to_dict() for f in serial.findings
        ]
        assert forked.engine.get("jobs") == 4

    def test_warm_run_beats_cold_by_3x(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        start = time.perf_counter()
        cold = lint_paths([FIXTURES], cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = lint_paths([FIXTURES], cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - start
        assert _cache_info(warm)["analyzed"] == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert cold_seconds > 3 * warm_seconds, (
            f"cold {cold_seconds:.3f}s vs warm {warm_seconds:.3f}s"
        )


# -- The manifest object -----------------------------------------------


class TestManifest:
    def test_fingerprint_is_stable_within_a_process(self):
        assert engine_fingerprint() == engine_fingerprint()

    def test_deps_reuse_skips_the_parse(self, tmp_path):
        cache = LintCache(str(tmp_path / "cache"))
        cache.store("mod.py", "sha1", ["dep.py"], "key", [])
        # Matching sha: manifest deps come back even for junk source.
        assert cache.deps_for(
            "mod.py", "sha1", "not ( python", ["mod.py", "dep.py"]
        ) == ["dep.py"]
        # Mismatched sha: falls back to extraction (junk parses to []).
        assert cache.deps_for(
            "mod.py", "sha2", "not ( python", ["mod.py", "dep.py"]
        ) == []

    def test_save_and_reload_roundtrip(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = LintCache(directory)
        cache.store("mod.py", "sha1", [], "key", [])
        cache.save()
        reloaded = LintCache(directory)
        assert reloaded.findings_for("mod.py", "key") == []
        assert reloaded.findings_for("mod.py", "other-key") is None
