"""Baseline hygiene: retired entries are pruned instead of rotting."""

import json

import pytest

from repro.cli import main
from repro.lint import lint_paths, prune_baseline
from repro.lint.report import Finding

from tests.lint.conftest import fixture_path


def _finding(rule="DVS006", context=""):
    return Finding(
        rule=rule, path="mod.py", line=3, col=0,
        message="a message", context=context,
    )


class TestPruneBaseline:
    def test_live_entries_are_kept(self):
        current = [_finding()]
        baseline = {"findings": [current[0].to_dict()]}
        kept, pruned = prune_baseline(baseline, current)
        assert kept == [current[0].to_dict()]
        assert pruned == []

    def test_unknown_rule_is_retired(self):
        entry = dict(_finding().to_dict(), rule="DVS999")
        kept, pruned = prune_baseline({"findings": [entry]}, [])
        assert kept == []
        assert pruned == [entry]

    def test_rotated_context_is_retired(self):
        stale = _finding(rule="DVS015", context="wire-schema-v1")
        live = _finding(rule="DVS015", context="wire-schema-v2")
        kept, pruned = prune_baseline(
            {"findings": [stale.to_dict(), live.to_dict()]}, [live]
        )
        assert kept == [live.to_dict()]
        assert pruned == [stale.to_dict()]

    def test_context_free_entries_survive_quiet_runs(self):
        # No current findings at all: a context-free entry still waives
        # a future regression, so it stays.
        entry = _finding().to_dict()
        kept, pruned = prune_baseline({"findings": [entry]}, [])
        assert kept == [entry]
        assert pruned == []

    def test_accepts_a_bare_entry_list(self):
        entry = dict(_finding().to_dict(), rule="DVS999")
        kept, pruned = prune_baseline([entry], [])
        assert (kept, pruned) == ([], [entry])


class TestPruneCli:
    def test_prune_rewrites_the_baseline_in_place(self, tmp_path, capsys):
        target = fixture_path("determinism_bad.py")
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", target, "--format", "json",
            "--output", str(baseline),
        ]) == 1
        data = json.loads(baseline.read_text())
        data["findings"].append(
            dict(data["findings"][0], rule="DVS999")
        )
        baseline.write_text(json.dumps(data))
        capsys.readouterr()
        assert main([
            "lint", target, "--baseline", str(baseline),
            "--prune-baseline", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline pruned 1 retired entry" in out
        assert "waived by the baseline" in out
        rewritten = json.loads(baseline.read_text())
        assert all(
            entry["rule"] != "DVS999"
            for entry in rewritten["findings"]
        )

    def test_prune_requires_a_baseline(self):
        with pytest.raises(SystemExit):
            main([
                "lint", fixture_path("determinism_bad.py"),
                "--prune-baseline",
            ])

    def test_nothing_to_prune_leaves_the_file_alone(
        self, tmp_path, capsys
    ):
        target = fixture_path("determinism_bad.py")
        baseline = tmp_path / "baseline.json"
        main([
            "lint", target, "--format", "json",
            "--output", str(baseline),
        ])
        before = baseline.read_text()
        capsys.readouterr()
        assert main([
            "lint", target, "--baseline", str(baseline),
            "--prune-baseline", "--no-cache",
        ]) == 0
        assert "baseline pruned 0" in capsys.readouterr().out
        assert baseline.read_text() == before


def test_report_exposes_prune_counts_for_ci():
    report = lint_paths([fixture_path("determinism_bad.py")])
    stale = dict(report.findings[0].to_dict(), rule="DVS999")
    kept, pruned = prune_baseline(
        {"findings": [stale] + [
            f.to_dict() for f in report.findings
        ]},
        report.findings,
    )
    assert len(kept) == len(report.findings)
    assert len(pruned) == 1
