"""Unit tests for the monotone dataflow framework itself."""

import ast

import pytest

from repro.lint.dataflow import (
    Analysis,
    MAX_VISITS_PER_BLOCK,
    SummaryTable,
    facts_at_statements,
    join_facts,
    negated_none_comparisons,
    none_comparisons,
    run_forward,
    self_attr_of,
    statement_parts,
)
from repro.lint.ir import FunctionIR


def _ir(source, name=None):
    tree = ast.parse(source)
    func = next(
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and (name is None or node.name == name)
    )
    return FunctionIR(func, path="<test>")


class TrackAssigns(Analysis):
    """fact: local name -> "set" after any assignment to it."""

    def transfer(self, fact, stmt, ir):
        for part in statement_parts(stmt):
            if isinstance(part, ast.Assign):
                for target in part.targets:
                    if isinstance(target, ast.Name):
                        fact = dict(fact)
                        fact[target.id] = "set"
        return fact


class TestMustJoin:
    def test_agreeing_branches_keep_the_key(self):
        ir = _ir(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        facts = facts_at_statements(TrackAssigns(), ir)
        ret = next(
            stmt for stmt in ast.walk(ir.node)
            if isinstance(stmt, ast.Return)
        )
        assert facts[id(ret)] == {"x": "set"}

    def test_one_sided_assignment_is_dropped_at_the_merge(self):
        ir = _ir(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    return x\n"
        )
        facts = facts_at_statements(TrackAssigns(), ir)
        ret = next(
            stmt for stmt in ast.walk(ir.node)
            if isinstance(stmt, ast.Return)
        )
        assert facts[id(ret)] == {}

    def test_join_values_disagreement_drops_key(self):
        analysis = Analysis()
        assert join_facts(
            {"k": "a", "m": "x"}, {"k": "b", "m": "x"}, analysis
        ) == {"m": "x"}


class RefineNone(Analysis):
    """Tracks nonnull-ness of ``self.attr`` purely from branch
    conditions."""

    def refine(self, fact, test, sense, ir):
        pairs = (
            none_comparisons(test) if sense
            else negated_none_comparisons(test)
        )
        for operand, is_none in pairs:
            attr = self_attr_of(operand)
            if attr is not None:
                fact = dict(fact)
                fact[attr] = "null" if is_none else "nonnull"
        return fact


class TestEdgeRefinement:
    def test_true_and_false_edges_learn_opposite_facts(self):
        ir = _ir(
            "def f(self):\n"
            "    if self.cur is None:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
        )
        facts = facts_at_statements(RefineNone(), ir)
        then_stmt, else_stmt = (
            stmt for stmt in ast.walk(ir.node)
            if isinstance(stmt, ast.Assign)
        )
        assert facts[id(then_stmt)] == {"cur": "null"}
        assert facts[id(else_stmt)] == {"cur": "nonnull"}

    def test_early_return_guard_proves_the_tail(self):
        ir = _ir(
            "def f(self):\n"
            "    if self.cur is None:\n"
            "        return\n"
            "    x = 1\n"
        )
        facts = facts_at_statements(RefineNone(), ir)
        tail = next(
            stmt for stmt in ast.walk(ir.node)
            if isinstance(stmt, ast.Assign)
        )
        assert facts[id(tail)] == {"cur": "nonnull"}

    def test_conjunction_proves_each_conjunct_on_true_only(self):
        test = ast.parse(
            "self.a is not None and self.b is None", mode="eval"
        ).body
        assert [
            (self_attr_of(op), is_none)
            for op, is_none in none_comparisons(test)
        ] == [("a", False), ("b", True)]
        # Negating a conjunction proves nothing about its conjuncts.
        assert negated_none_comparisons(test) == []


class Growing(Analysis):
    """A deliberately non-monotone analysis: the joined value keeps
    growing at the loop head, so the fixpoint never stabilises."""

    def initial(self, ir):
        return {"n": 0}

    def join_values(self, a, b):
        return a + b + 1

    def transfer(self, fact, stmt, ir):
        return fact


class TestSafetyValve:
    def test_non_monotone_analysis_trips_the_valve(self):
        ir = _ir(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    return n\n"
        )
        assert run_forward(Growing(), ir) is None
        assert facts_at_statements(Growing(), ir) is None

    def test_valve_is_generous_enough_for_real_lattices(self):
        # A loop over a finite lattice converges far below the valve.
        ir = _ir(
            "def f(n):\n"
            "    x = 1\n"
            "    while n:\n"
            "        x = 2\n"
            "    return x\n"
        )
        facts = facts_at_statements(TrackAssigns(), ir)
        assert facts is not None
        assert MAX_VISITS_PER_BLOCK >= 16


class TestStatementParts:
    def test_nested_definitions_contribute_nothing(self):
        module = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        cluster.bcast('x')\n"
            "    class Local:\n"
            "        y = cluster.run()\n"
        )
        outer = module.body[0]
        for stmt in outer.body:
            assert statement_parts(stmt) == ()

    def test_compound_headers_only(self):
        stmt = ast.parse("for i in xs:\n    pass\n").body[0]
        assert statement_parts(stmt) == (stmt.target, stmt.iter)
        stmt = ast.parse("try:\n    pass\nfinally:\n    pass\n").body[0]
        assert statement_parts(stmt) == ()


class TestSummaryTable:
    def test_memoises(self):
        calls = []

        def compute(ir, table):
            calls.append(ir)
            return True

        table = SummaryTable(compute, bottom=False)
        ir = _ir("def f():\n    pass\n")
        assert table.get(ir) is True
        assert table.get(ir) is True
        assert len(calls) == 1

    def test_cycle_returns_bottom(self):
        ir_a = _ir("def a():\n    pass\n")
        ir_b = _ir("def b():\n    pass\n")
        pair = {id(ir_a): ir_b, id(ir_b): ir_a}

        def compute(ir, table):
            # a asks about b, b asks back about a: the cycle must
            # resolve to bottom instead of recursing.
            return table.get(pair[id(ir)])

        table = SummaryTable(compute, bottom="bottom")
        assert table.get(ir_a) == "bottom"


def test_try_handler_merge_is_conservative():
    # An exception may arrive before the body ran: facts proven inside
    # the try body must not survive into the handler.
    ir = _ir(
        "def f(c):\n"
        "    try:\n"
        "        x = 1\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        y = 2\n"
        "    return c\n"
    )
    facts = facts_at_statements(TrackAssigns(), ir)
    handler_stmt = next(
        stmt for stmt in ast.walk(ir.node)
        if isinstance(stmt, ast.Assign)
        and isinstance(stmt.targets[0], ast.Name)
        and stmt.targets[0].id == "y"
    )
    assert "x" not in facts[id(handler_stmt)]
