"""Site-level detail coverage for the protocol-typestate pass
(DVS023-DVS026), including the interprocedural closer summary."""

import textwrap

from repro.lint import LintConfig, lint_paths

from tests.lint.conftest import findings_for


def _lint_source(tmp_path, source, config=None, name="sample.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return lint_paths([str(target)], config=config)


class TestFanoutPorts:
    def test_sites_and_messages(self, lint_fixture):
        report = lint_fixture("typestate_bad.py")
        drive, dropped = findings_for(report, "DVS023")
        assert drive.line == 21
        assert "not bound to a tower" in drive.message
        assert dropped.line == 22
        assert "drops it" in dropped.message

    def test_port_bound_through_any_call_is_fine(self, tmp_path):
        report = _lint_source(tmp_path, """
            class DvsFanout:
                def port(self):
                    return self

            def good(dvs, tower_cls, registry):
                fanout = DvsFanout()
                port = fanout.port()
                registry.adopt(port)
                port.gpsnd("fine: escaped to the tower")
        """)
        assert not findings_for(report, "DVS023"), report.to_text()


class TestSendAfterClose:
    def test_sites(self, lint_fixture):
        report = lint_fixture("typestate_bad.py")
        assert [f.line for f in findings_for(report, "DVS024")] == [29, 34]

    def test_interprocedural_closer_summary(self, tmp_path):
        report = _lint_source(tmp_path, """
            class Session:
                def __init__(self, link):
                    self.link = link

                def shutdown(self):
                    self.link.close()

                def bad(self, m):
                    self.shutdown()
                    self.link.send(m)
        """)
        (finding,) = findings_for(report, "DVS024")
        assert "self.link.send()" in finding.message

    def test_helper_that_does_not_close_stays_silent(self, tmp_path):
        report = _lint_source(tmp_path, """
            class Session:
                def __init__(self, link):
                    self.link = link

                def flush(self):
                    self.link.send("flush")

                def fine(self, m):
                    self.flush()
                    self.link.send(m)
        """)
        assert report.ok, report.to_text()

    def test_reopen_between_close_and_send_is_fine(self, tmp_path):
        report = _lint_source(tmp_path, """
            def cycle(link, m):
                link.close()
                link.connect()
                link.send(m)
        """)
        assert report.ok, report.to_text()

    def test_close_on_one_branch_only_is_a_may_not_a_must(self, tmp_path):
        report = _lint_source(tmp_path, """
            def maybe(link, m, flaky):
                if flaky:
                    link.close()
                link.send(m)
        """)
        assert report.ok, report.to_text()


class TestHarnessArming:
    def test_sites_and_messages(self, lint_fixture):
        report = lint_fixture("typestate_bad.py")
        early_drive, late_arm = findings_for(report, "DVS025")
        assert early_drive.line == 55
        assert "before cluster.start()" in early_drive.message
        assert late_arm.line == 57
        assert "armed after cluster.start()" in late_arm.message

    def test_context_manager_counts_as_started(self, tmp_path):
        report = _lint_source(tmp_path, """
            class Cluster:
                def __init__(self, n):
                    self.monitor = None

                def start(self):
                    return self

                def bcast(self, payload):
                    return payload

            def scenario():
                with Cluster(3) as cluster:
                    cluster.bcast("fine inside the with")
        """)
        assert report.ok, report.to_text()


class TestViewScopedClocks:
    def test_leak_names_the_attribute(self, lint_fixture):
        report = lint_fixture("typestate_bad.py")
        (finding,) = findings_for(report, "DVS026")
        assert "self.delivered" in finding.message
        assert "newview boundary" in finding.message

    def test_reset_via_transitive_helper_is_fine(self, tmp_path):
        report = _lint_source(tmp_path, """
            from repro.cb.clocks import drain

            class TidyLayer:
                def __init__(self):
                    self.holdback = []
                    self.delivered = ()

                def on_dvs_newview(self, view):
                    self._rollover(view)

                def _rollover(self, view):
                    self.view = view
                    self.delivered = ()

                def deliver(self, now):
                    out, self.delivered = drain(
                        self.holdback, self.delivered
                    )
                    return out
        """)
        assert not findings_for(report, "DVS026"), report.to_text()

    def test_clock_module_knob_scopes_the_rule(self, tmp_path):
        # Same shape, but the value does not come from a clock module:
        # no view-scoped obligation, no finding.
        report = _lint_source(tmp_path, """
            from some.other.helpers import drain

            class Layer:
                def __init__(self):
                    self.delivered = ()

                def on_dvs_newview(self, view):
                    self.view = view

                def deliver(self, held):
                    out, self.delivered = drain(held, self.delivered)
                    return out
        """)
        assert report.ok, report.to_text()


def test_typestate_respects_select(tmp_path):
    config = LintConfig(select={"DVS024"})
    report = _lint_source(tmp_path, """
        def f(link, m):
            link.close()
            link.send(m)
    """, config=config)
    assert {f.rule for f in report.findings} == {"DVS024"}
