"""The lint engine over the causal-broadcast package: the ``cb/`` tier
exercises every pass (spec automata, clocks, wire codecs, runtime
threads) and must stay clean end to end."""

import os

from repro.lint import lint_paths

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "src", "repro",
)
CB = os.path.join(REPO_SRC, "cb")


def test_cb_package_is_lint_clean():
    report = lint_paths([CB])
    assert report.ok, "\n" + report.to_text()
    assert report.files_scanned >= 5


def test_cb_run_exercises_the_full_pass_roster():
    report = lint_paths([CB])
    assert set(report.engine["passes"]) >= {
        "wellformed", "determinism", "races", "wire",
        "typestate", "specconf",
    }
    assert report.engine["ir_functions"] > 20


def test_cb_package_warms_the_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = lint_paths([CB], cache_dir=cache_dir)
    assert cold.engine["cache"]["misses"] == cold.files_scanned
    warm = lint_paths([CB], cache_dir=cache_dir)
    assert warm.engine["cache"]["hits"] == warm.files_scanned
    assert warm.engine["cache"]["analyzed"] == 0
    assert warm.ok == cold.ok


def test_cb_parallel_run_matches_serial():
    serial = lint_paths([CB], jobs=1)
    forked = lint_paths([CB], jobs=4)
    assert [f.to_dict() for f in forked.findings] == [
        f.to_dict() for f in serial.findings
    ]
    assert forked.suppressed == serial.suppressed
