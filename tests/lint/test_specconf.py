"""Site-level detail coverage for the spec-conformance pass
(DVS022 unguarded spec sends, DVS027 spec drift) and the automata
metadata it projects from."""

import ast
import textwrap

from repro.ioa.metadata import is_none_guarded, state_writes
from repro.lint import lint_paths

from tests.lint.conftest import findings_for


def _lint_source(tmp_path, source, name="sample.py"):
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return lint_paths([str(target)])


def _func(source):
    return ast.parse(textwrap.dedent(source)).body[0]


# -- the metadata layer the pass is built on ---------------------------


class TestNoneGuardProjection:
    def test_canonical_spec_effect_is_guarded(self):
        func = _func("""
            def eff_dvs_gpsnd(self, state, p, m):
                g = state.current_viewid.get(p)
                if g is not None:
                    state.pending[g].append((p, m))
        """)
        assert is_none_guarded(func)

    def test_read_accessors_are_not_writes(self):
        func = _func("""
            def eff(self, state, p):
                state.current_viewid.get(p)
                state.members.copy()
        """)
        assert state_writes(func) == ()
        # ...and with no writes there is nothing to guard.
        assert not is_none_guarded(func)

    def test_early_bailout_shape_is_guarded(self):
        func = _func("""
            def eff(self, state, p, m):
                g = state.current_viewid.get(p)
                if g is None:
                    return
                state.pending[g].append((p, m))
        """)
        assert is_none_guarded(func)

    def test_one_unguarded_write_defeats_the_idiom(self):
        func = _func("""
            def eff(self, state, p, m):
                g = state.current_viewid.get(p)
                if g is not None:
                    state.pending[g].append((p, m))
                state.log.append(m)
        """)
        assert not is_none_guarded(func)


# -- DVS022 ------------------------------------------------------------


class TestUnguardedSpecSend:
    def test_site_names_spec_layer_and_attribute(self, lint_fixture):
        report = lint_fixture("specconf_bad.py")
        (finding,) = findings_for(report, "DVS022")
        assert finding.line == 81
        assert "BadLayer.gpsnd" in finding.message
        assert "(cur)" in finding.message
        assert "DemoSpec.eff_dvs_gpsnd" in finding.message

    def test_guarded_calls_in_good_fixture(self, lint_fixture):
        report = lint_fixture("specconf_good.py")
        assert not findings_for(report, "DVS022"), report.to_text()

    def test_guard_in_caller_does_not_leak_into_callee(self, tmp_path):
        # The guard must dominate the send in the *same* function; a
        # guard at one call site proves nothing about the method.
        report = _lint_source(tmp_path, """
            from repro.ioa.automaton import TransitionAutomaton

            class DemoSpec(TransitionAutomaton):
                inputs = frozenset({"dvs_gpsnd"})
                outputs = frozenset()
                internals = frozenset()

                def eff_dvs_gpsnd(self, state, p, m):
                    g = state.current_viewid.get(p)
                    if g is not None:
                        state.pending[g].append((p, m))

            class Layer:
                def __init__(self, stack):
                    self.stack = stack
                    self.cur = None

                def on_dvs_newview(self, view):
                    self.cur = view

                def gpsnd(self, payload):
                    self.stack.gpsnd(payload)

                def caller(self, payload):
                    if self.cur is not None:
                        self.gpsnd(payload)
        """)
        (finding,) = findings_for(report, "DVS022")
        assert "Layer.gpsnd" in finding.message


# -- DVS027 ------------------------------------------------------------


class TestSpecDrift:
    def test_kind_mismatches_report_at_the_impl_class(self, lint_fixture):
        report = lint_fixture("specconf_bad.py")
        mismatches = [
            f for f in findings_for(report, "DVS027")
            if "declares" in f.message
        ]
        assert len(mismatches) == 2
        assert all(f.line == 41 for f in mismatches)
        assert {
            action
            for f in mismatches
            for action in ("dvs_gpsnd", "dvs_register")
            if action in f.message
        } == {"dvs_gpsnd", "dvs_register"}

    def test_unguarded_output_reports_at_the_effect(self, lint_fixture):
        report = lint_fixture("specconf_bad.py")
        (finding,) = [
            f for f in findings_for(report, "DVS027")
            if "unguarded" in f.message
        ]
        assert finding.line == 57
        assert "dvs_newview" in finding.message

    def test_unimplemented_external_reports_at_the_spec(self, lint_fixture):
        report = lint_fixture("specconf_bad.py")
        (finding,) = [
            f for f in findings_for(report, "DVS027")
            if "implemented by no automaton" in f.message
        ]
        assert finding.line == 7  # the DemoSpec class line
        assert "dvs_leave" in finding.message

    def test_conforming_package_has_no_drift(self, lint_fixture):
        report = lint_fixture("specconf_good.py")
        assert not findings_for(report, "DVS027"), report.to_text()

    def test_spec_only_package_is_not_drift(self, tmp_path):
        # A package that ships only the spec automaton (impls live
        # elsewhere) must not drown in unimplemented-external noise
        # for actions some *other* automaton in the dir implements.
        report = _lint_source(tmp_path, """
            from repro.ioa.automaton import TransitionAutomaton

            class OnlySpec(TransitionAutomaton):
                inputs = frozenset({"dvs_gpsnd"})
                outputs = frozenset()
                internals = frozenset()

                def eff_dvs_gpsnd(self, state, p, m):
                    g = state.current_viewid.get(p)
                    if g is not None:
                        state.pending[g].append((p, m))
        """, name="spec.py")
        assert not findings_for(report, "DVS027"), report.to_text()
