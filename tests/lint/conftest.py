"""Shared helpers for the linter's own tests."""

import os

import pytest

from repro.lint import lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_path(name):
    return os.path.join(FIXTURES, name)


@pytest.fixture(scope="session")
def lint_fixture():
    """Lint one fixture file (cached per session) and return the report."""
    cache = {}

    def run(name, config=None):
        if config is not None:
            return lint_paths([fixture_path(name)], config=config)
        if name not in cache:
            cache[name] = lint_paths([fixture_path(name)])
        return cache[name]

    return run


def rule_ids(report):
    return {finding.rule for finding in report.findings}


def findings_for(report, rule):
    return [f for f in report.findings if f.rule == rule]
