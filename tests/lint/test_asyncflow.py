"""DVS016-DVS019: the async-hazard pass on its fixtures, the facade
classification of the real runtime (caller-thread blocking is *not* a
loop hazard), and the acceptance-critical mutation checks on the real
tree.
"""

import os
import shutil

import pytest

from repro.lint import LintConfig, lint_paths

from tests.lint.conftest import fixture_path, findings_for, rule_ids

ASYNC_RULES = frozenset({"DVS016", "DVS017", "DVS018", "DVS019"})

SRC_RUNTIME = os.path.join("src", "repro", "runtime")


def _config(glob):
    return LintConfig(select=ASYNC_RULES, runtime_globs=(glob,))


def _bad_report():
    return lint_paths(
        [fixture_path("async_bad.py")],
        config=_config("*/fixtures/async_bad.py"),
    )


def test_blocking_calls_found_through_the_call_graph():
    report = _bad_report()
    blocking = findings_for(report, "DVS016")
    assert len(blocking) == 3
    messages = " | ".join(f.message for f in blocking)
    assert "time.sleep" in messages
    assert "subprocess.run" in messages
    assert "fut.result()" in messages
    # The sync helper is only a hazard because a coroutine reaches it:
    # the finding names the originating coroutine, two hops away.
    assert "ack" in messages


def test_dropped_task_and_torn_write_sites():
    report = _bad_report()
    (dropped,) = findings_for(report, "DVS017")
    assert "ensure_future" in dropped.message
    (torn,) = findings_for(report, "DVS018")
    assert "self.view" in torn.message
    assert "38" in torn.message and "40" in torn.message


def test_lock_cycle_names_both_locks():
    report = _bad_report()
    cycle = findings_for(report, "DVS019")
    assert len(cycle) == 2
    for finding in cycle:
        assert "lock_a" in finding.message
        assert "lock_b" in finding.message


def test_good_fixture_is_clean():
    report = lint_paths(
        [fixture_path("async_good.py")],
        config=_config("*/fixtures/async_good.py"),
    )
    assert report.ok, report.to_text()


def test_classification_of_the_real_runtime():
    """The audit the pass exists for: the facade's caller-thread
    ``time.sleep``/``fut.result`` sites (cluster.py, chaos.py) are NOT
    loop hazards -- only coroutine-reachable blocking is."""
    for name in ("cluster.py", "chaos.py"):
        with open(os.path.join(SRC_RUNTIME, name),
                  encoding="utf-8") as handle:
            assert "time.sleep" in handle.read(), (
                "expected a caller-thread sleep in " + name
            )
    report = lint_paths(["src/repro"], config=LintConfig(
        select=ASYNC_RULES,
    ))
    assert report.ok, report.to_text()


# -- Mutations on the real runtime -------------------------------------

_MUTATIONS = {
    "blocking_stop": (
        "cluster.py",
        "await node.stop()",
        "time.sleep(0.01)",
        "DVS016",
    ),
    "dropped_reader_task": (
        "transport.py",
        "self._task = asyncio.ensure_future(self._run())",
        "asyncio.ensure_future(self._run())",
        "DVS017",
    ),
}


@pytest.mark.parametrize("name", sorted(_MUTATIONS))
def test_mutating_the_runtime_reintroduces_findings(tmp_path, name):
    """Acceptance: blocking a coroutine or dropping a task ref in the
    shipped runtime is reported."""
    filename, original, replacement, expected_rule = _MUTATIONS[name]
    tree = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC_RUNTIME, tree)
    target = tree / filename
    source = target.read_text()
    assert original in source, "mutation anchor drifted"
    target.write_text(source.replace(original, replacement))
    report = lint_paths([str(tmp_path)], config=LintConfig(
        select=ASYNC_RULES,
    ))
    assert expected_rule in rule_ids(report), report.to_text()
    assert all(
        f.path.endswith(filename)
        for f in findings_for(report, expected_rule)
    )


def test_unmutated_runtime_is_clean():
    report = lint_paths(["src/repro"], config=LintConfig(
        select=ASYNC_RULES,
    ))
    assert report.ok, report.to_text()
