"""Golden-file SARIF snapshot: the rendered document for a seeded
fixture is pinned byte-for-byte (modulo path normalisation), so any
drift in rule metadata, result shape or engine properties shows up as
a reviewable diff in ``tests/lint/golden/``.

To regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/lint/test_sarif_golden.py \
        --force-regen  # (delete the golden file and re-run the test)
"""

import json
import os

from repro.lint import lint_paths

from tests.lint.conftest import fixture_path

GOLDEN = os.path.join(
    os.path.dirname(__file__), "golden", "typestate_bad.sarif.json"
)


def _normalised_document():
    report = lint_paths([fixture_path("typestate_bad.py")])
    document = json.loads(report.to_sarif())
    for result in document["runs"][0]["results"]:
        location = result["locations"][0]["physicalLocation"]
        artifact = location["artifactLocation"]
        artifact["uri"] = (
            "tests/lint/fixtures/" + os.path.basename(artifact["uri"])
        )
    return document


def test_sarif_snapshot_matches_golden():
    document = _normalised_document()
    if not os.path.exists(GOLDEN):  # regeneration path
        os.makedirs(os.path.dirname(GOLDEN), exist_ok=True)
        with open(GOLDEN, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    assert document == golden


def test_golden_is_checked_in_and_self_consistent():
    with open(GOLDEN, "r", encoding="utf-8") as handle:
        golden = json.load(handle)
    (run,) = golden["runs"]
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
        "DVS023", "DVS024", "DVS025", "DVS026"
    ]
    assert len(run["results"]) == 7
