"""Unit tests for the analysis IR: CFG reachability, access and call
summaries, and the parser edge cases the fixture seeds -- decorated
transitions, nested classes, ``async def``, walrus targets and
try/finally writes.
"""

import ast
import textwrap

from repro.lint.ir import FunctionIR, receiver_chain

from tests.lint.conftest import fixture_path


def _ir(source, name, klass=None):
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return FunctionIR(node, "mem.py", klass=klass)
    raise AssertionError("no function named " + name)


def _fixture_method(class_name, method):
    with open(fixture_path("edge_cases.py"), encoding="utf-8") as fh:
        tree = ast.parse(fh.read())
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for stmt in node.body:
                if isinstance(stmt, (
                    ast.FunctionDef, ast.AsyncFunctionDef
                )) and stmt.name == method:
                    return FunctionIR(
                        stmt, "edge_cases.py", klass=class_name
                    )
    raise AssertionError(class_name + "." + method)


# -- CFG reachability --------------------------------------------------


def test_statements_after_return_are_dead():
    ir = _ir(
        """
        def f(self):
            return 1
            self.x = 2
        """,
        "f",
    )
    assert ir.accesses == []


def test_both_branches_returning_kills_the_fallthrough():
    ir = _ir(
        """
        def f(self, flag):
            if flag:
                return 1
            else:
                return 2
            self.x = 3
        """,
        "f",
    )
    assert ir.accesses == []


def test_conditional_return_keeps_the_fallthrough_live():
    ir = _ir(
        """
        def f(self, flag):
            if flag:
                return 1
            self.x = 3
        """,
        "f",
    )
    assert [(a.attr, a.kind) for a in ir.accesses] == [("x", "write")]


def test_break_reaches_the_after_loop_block():
    ir = _ir(
        """
        def f(self):
            while True:
                break
            self.done = True
        """,
        "f",
    )
    assert [(a.attr, a.kind) for a in ir.accesses] == [("done", "write")]


# -- Access summaries --------------------------------------------------


def test_access_kinds_read_write_mutate():
    ir = _ir(
        """
        def f(self, v):
            a = self.first
            self.second = v
            self.third[v] = a
            self.fourth.append(v)
            del self.fifth
        """,
        "f",
    )
    kinds = {(a.attr, a.kind) for a in ir.attr_accesses("self")}
    assert ("first", "read") in kinds
    assert ("second", "write") in kinds
    assert ("third", "mutate") in kinds
    assert ("fourth", "mutate") in kinds
    assert ("fifth", "write") in kinds


def test_augmented_assign_counts_as_read_and_write():
    ir = _ir(
        """
        def f(self):
            self.count += 1
        """,
        "f",
    )
    kinds = sorted(
        a.kind for a in ir.attr_accesses("self") if a.attr == "count"
    )
    assert kinds == ["read", "write"]


def test_lambda_bodies_are_not_this_functions_accesses():
    ir = _ir(
        """
        def f(self):
            cb = lambda: self.hidden.pop()
            return cb
        """,
        "f",
    )
    assert ir.attr_accesses("self") == []


def test_nested_functions_get_their_own_ir():
    ir = _ir(
        """
        def f(self):
            def inner():
                self.x = 1
            return inner
        """,
        "f",
    )
    assert ir.attr_accesses("self") == []
    inner = ir.nested["inner"]
    assert inner.qualname == "f.inner"
    assert [
        (a.attr, a.kind) for a in inner.attr_accesses("self")
    ] == [("x", "write")]


def test_receiver_chain_folds_subscripts():
    call = ast.parse("self._nodes[p].to.bcast(x)").body[0].value
    assert receiver_chain(call.func) == (
        "self", ("_nodes", "to", "bcast")
    )


# -- Parser edge cases from the fixture --------------------------------


def test_async_def_is_lowered():
    ir = _fixture_method("Outer", "tick")
    assert ir.is_async
    kinds = sorted(a.kind for a in ir.attr_accesses("self"))
    assert kinds == ["read", "write"]


def test_walrus_targets_enter_the_local_environment():
    ir = _fixture_method("Outer", "walrus")
    assert "n" in ir.local_values
    assert "chunk" in ir.local_values
    assert ("count", "write") in {
        (a.attr, a.kind) for a in ir.attr_accesses("self")
    }


def test_try_finally_writes_are_live():
    ir = _fixture_method("Outer", "guarded")
    writes = [
        a for a in ir.attr_accesses("self")
        if a.attr == "count" and a.kind == "write"
    ]
    # One bump inside try, one inside finally: both on live paths.
    assert len({a.line for a in writes}) == 2


def test_decorated_transition_keeps_its_state_accesses():
    ir = _fixture_method("DecoratedAutomaton", "eff_nudge")
    kinds = sorted(
        a.kind for a in ir.attr_accesses("state") if a.attr == "count"
    )
    assert kinds == ["read", "write"]
