"""DVS020/DVS021: the wire-taint pass on its fixture trees, the
validator-gate semantics, and the acceptance-critical mutation checks
on the real receive path.
"""

import os
import shutil

import pytest

from repro.lint import LintConfig, lint_paths

from tests.lint.conftest import fixture_path, findings_for, rule_ids

TAINT_RULES = frozenset({"DVS020", "DVS021"})

SRC_RUNTIME = os.path.join("src", "repro", "runtime")


def _tree_config(tree):
    return LintConfig(
        select=TAINT_RULES,
        runtime_globs=("*/fixtures/{0}/node.py".format(tree),),
        codec_globs=("*/fixtures/{0}/codec.py".format(tree),),
    )


def _bad_report():
    return lint_paths(
        [fixture_path("taint_bad")], config=_tree_config("taint_bad")
    )


def test_every_sink_kind_fires_once():
    report = _bad_report()
    sinks = findings_for(report, "DVS020")
    assert len(sinks) == 3
    messages = " | ".join(f.message for f in sinks)
    assert "subscript key" in messages
    assert "Automaton.on_message" in messages
    assert "call_later" in messages


def test_boundary_sink_names_the_tainted_arguments():
    report = _bad_report()
    (boundary,) = [
        f for f in findings_for(report, "DVS020")
        if "on_message" in f.message
    ]
    assert "msg" in boundary.message and "src" in boundary.message


def test_unbounded_growth_names_each_container_once():
    report = _bad_report()
    growth = findings_for(report, "DVS021")
    assert len(growth) == 2
    named = {f.message.split()[0] for f in growth}
    assert named == {"self.seen", "self.backlog"}


def test_validated_pruned_tree_is_clean():
    report = lint_paths(
        [fixture_path("taint_good")], config=_tree_config("taint_good")
    )
    assert report.ok, report.to_text()


def test_real_receive_path_is_clean():
    """node._validate_inbound() cleanses src/msg and every receive-path
    container is bounded or pruned -- the two shipped fixes this pass
    exists to keep in place."""
    report = lint_paths(["src/repro"], config=LintConfig(
        select=TAINT_RULES,
    ))
    assert report.ok, report.to_text()


# -- Mutations on the real runtime -------------------------------------

_GATE = (
    "        if not self._validate_inbound(src, msg):\n"
    "            return\n"
)


def _mutate_runtime(tmp_path, filename, original, replacement):
    tree = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC_RUNTIME, tree)
    target = tree / filename
    source = target.read_text()
    assert original in source, "mutation anchor drifted"
    target.write_text(source.replace(original, replacement))
    return lint_paths([str(tmp_path)], config=LintConfig(
        select=TAINT_RULES,
    ))


def test_deleting_the_validator_gate_reintroduces_dvs020(tmp_path):
    """Acceptance: without _validate_inbound, wire-tainted src flows
    into the connectivity estimator's key space."""
    report = _mutate_runtime(tmp_path, "node.py", _GATE, "")
    assert "DVS020" in rule_ids(report), report.to_text()
    assert any(
        f.path.endswith("heartbeat.py")
        for f in findings_for(report, "DVS020")
    ), report.to_text()


def test_unbounding_the_error_sink_reintroduces_dvs021(tmp_path):
    """Acceptance: swapping the bounded error deque back to a bare
    list flags the receive-path growth."""
    report = _mutate_runtime(
        tmp_path, "node.py", "deque(maxlen=ERROR_LIMIT)", "[]"
    )
    assert "DVS021" in rule_ids(report), report.to_text()
    assert any(
        "self.errors" in f.message
        for f in findings_for(report, "DVS021")
    ), report.to_text()


def test_unmutated_runtime_copy_is_clean(tmp_path):
    tree = tmp_path / "repro" / "runtime"
    shutil.copytree(SRC_RUNTIME, tree)
    report = lint_paths([str(tmp_path)], config=LintConfig(
        select=TAINT_RULES,
    ))
    assert report.ok, report.to_text()
