"""Unit tests for the environment drivers and adversary pools."""

import pytest

from repro.checking.drivers import (
    DvsClientDriver,
    SxClientDriver,
    ToClientDriver,
    VsClientDriver,
    chain_view_pool,
    grid_view_pool,
    majority_view_pool,
    random_view_pool,
)
from repro.core import make_view
from repro.ioa import act


class TestVsClientDriver:
    def test_sends_budget_in_order(self):
        driver = VsClientDriver("p1", budget=2)
        s = driver.initial_state()
        first = list(driver.controlled_candidates(s))
        assert first == [act("vs_gpsnd", ("m", "p1", 0), "p1")]
        s = driver.apply(s, first[0])
        second = list(driver.controlled_candidates(s))
        assert second == [act("vs_gpsnd", ("m", "p1", 1), "p1")]
        s = driver.apply(s, second[0])
        assert list(driver.controlled_candidates(s)) == []

    def test_participation(self):
        driver = VsClientDriver("p1")
        assert driver.participates(act("vs_gpsnd", "m", "p1"))
        assert not driver.participates(act("vs_gpsnd", "m", "p2"))


class TestDvsClientDriver:
    def test_registers_each_view_once(self, v0):
        driver = DvsClientDriver("p1", budget=0)
        s = driver.initial_state()
        assert list(driver.controlled_candidates(s)) == []  # no view yet
        s = driver.apply(s, act("dvs_newview", v0, "p1"))
        assert act("dvs_register", "p1") in driver.enabled_controlled(s)
        s = driver.apply(s, act("dvs_register", "p1"))
        assert act("dvs_register", "p1") not in driver.enabled_controlled(s)

    def test_eager_register_blocks_sends(self, v0):
        driver = DvsClientDriver("p1", budget=1, eager_register=True)
        s = driver.initial_state()
        s = driver.apply(s, act("dvs_newview", v0, "p1"))
        names = {a.name for a in driver.enabled_controlled(s)}
        assert names == {"dvs_register"}
        s = driver.apply(s, act("dvs_register", "p1"))
        names = {a.name for a in driver.enabled_controlled(s)}
        assert "dvs_gpsnd" in names

    def test_records_deliveries(self, v0):
        driver = DvsClientDriver("p1")
        s = driver.initial_state()
        s = driver.apply(s, act("dvs_gprcv", "m", "p2", "p1"))
        assert s.delivered == [("m", "p2")]


class TestSxClientDriver:
    def test_hands_in_snapshot_per_view(self, v0):
        driver = SxClientDriver("p1", budget=0)
        s = driver.initial_state()
        s = driver.apply(s, act("dvs_newview", v0, "p1"))
        offers = [
            a for a in driver.enabled_controlled(s)
            if a.name == "sx_sendstate"
        ]
        assert len(offers) == 1
        s = driver.apply(s, offers[0])
        assert not [
            a for a in driver.enabled_controlled(s)
            if a.name == "sx_sendstate"
        ]

    def test_collects_bundles(self, v0):
        driver = SxClientDriver("p1")
        s = driver.initial_state()
        s = driver.apply(s, act("sx_statedelivery", (("p1", "x"),), "p1"))
        assert s.bundles == [(("p1", "x"),)]


class TestToClientDriver:
    def test_budgeted_broadcasts(self):
        driver = ToClientDriver("p1", budget=1)
        s = driver.initial_state()
        (candidate,) = driver.enabled_controlled(s)
        assert candidate == act("bcast", ("a", "p1", 0), "p1")
        s = driver.apply(s, candidate)
        assert driver.enabled_controlled(s) == []


class TestViewPools:
    def test_grid_pool_counts(self):
        pool = grid_view_pool(["a", "b"], max_epoch=2)
        # 3 nonempty subsets x 2 epochs.
        assert len(pool) == 6
        assert len({v.id for v in pool}) == 2  # epochs shared across sizes

    def test_grid_pool_min_size(self):
        pool = grid_view_pool(["a", "b", "c"], max_epoch=1, min_size=3)
        assert len(pool) == 1
        assert pool[0].set == frozenset("abc")

    def test_random_pool_increasing_epochs(self):
        pool = random_view_pool(["a", "b", "c"], 5, seed=1)
        epochs = [v.id.epoch for v in pool]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == 5

    def test_random_pool_deterministic(self):
        assert random_view_pool("abc", 4, seed=9) == random_view_pool(
            "abc", 4, seed=9
        )

    def test_majority_pool_all_majorities(self):
        pool = majority_view_pool(list("abcde"), 10, seed=2)
        for view in pool:
            assert len(view.set) >= 3

    def test_chain_pool(self):
        pool = chain_view_pool([{"a"}, {"a", "b"}])
        assert [v.set for v in pool] == [
            frozenset({"a"}), frozenset({"a", "b"})
        ]
        assert pool[0].id < pool[1].id
