"""The trace-property checkers themselves: they must detect violations.

A checker that never fires is worse than none; each guarantee gets a
hand-built violating trace that must be rejected, next to a minimal
passing one.
"""

import pytest

from repro.checking import (
    check_dvs_trace_properties,
    check_to_trace_properties,
    check_vs_trace_properties,
)
from repro.core import make_view
from repro.ioa import act


@pytest.fixture
def v0():
    return make_view(0, {"p1", "p2", "p3"})


class TestVsChecker:
    def test_minimal_passing_trace(self, v0):
        trace = [
            act("vs_gpsnd", "m", "p1"),
            act("vs_gprcv", "m", "p1", "p2"),
            act("vs_safe", "m", "p1", "p2"),
        ]
        stats = check_vs_trace_properties(trace, v0)
        assert stats["deliveries"] == 1

    def test_view_order_violation(self, v0):
        v2 = make_view(2, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        trace = [act("vs_newview", v2, "p1"), act("vs_newview", v1, "p1")]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_non_member_view_violation(self, v0):
        v1 = make_view(1, {"p1"})
        trace = [act("vs_newview", v1, "p2")]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_delivery_without_send_violation(self, v0):
        trace = [act("vs_gprcv", "ghost", "p1", "p2")]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_cross_view_delivery_violation(self, v0):
        v1 = make_view(1, {"p1", "p2"})
        trace = [
            act("vs_gpsnd", "m", "p1"),     # sent in v0
            act("vs_newview", v1, "p2"),
            act("vs_gprcv", "m", "p1", "p2"),  # delivered in v1
        ]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_order_divergence_violation(self, v0):
        trace = [
            act("vs_gpsnd", "m1", "p1"),
            act("vs_gpsnd", "m2", "p2"),
            act("vs_gprcv", "m1", "p1", "p1"),
            act("vs_gprcv", "m2", "p2", "p1"),
            act("vs_gprcv", "m2", "p2", "p2"),
            act("vs_gprcv", "m1", "p1", "p2"),
        ]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_safe_not_prefix_violation(self, v0):
        trace = [
            act("vs_gpsnd", "m1", "p1"),
            act("vs_gpsnd", "m2", "p2"),
            act("vs_gprcv", "m1", "p1", "p3"),
            act("vs_gprcv", "m2", "p2", "p3"),
            act("vs_safe", "m2", "p2", "p3"),  # skips m1
        ]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)

    def test_duplicate_delivery_violation(self, v0):
        trace = [
            act("vs_gpsnd", "m1", "p1"),
            act("vs_gprcv", "m1", "p1", "p2"),
            act("vs_gprcv", "m1", "p1", "p2"),
        ]
        with pytest.raises(AssertionError):
            check_vs_trace_properties(trace, v0)


class TestDvsChecker:
    def test_register_counted(self, v0):
        trace = [act("dvs_register", "p1")]
        stats = check_dvs_trace_properties(trace, v0)
        assert stats["registers"] == 1

    def test_inherits_vs_style_checks(self, v0):
        trace = [act("dvs_gprcv", "ghost", "p1", "p2")]
        with pytest.raises(AssertionError):
            check_dvs_trace_properties(trace, v0)


class TestToChecker:
    def test_minimal_passing(self):
        trace = [
            act("bcast", "a", "p1"),
            act("brcv", "a", "p1", "p2"),
            act("brcv", "a", "p1", "p1"),
        ]
        stats = check_to_trace_properties(trace)
        assert stats == {
            "broadcasts": 1, "deliveries": 2, "max_delivered": 1
        }

    def test_integrity_violation(self):
        trace = [act("brcv", "a", "p1", "p2")]
        with pytest.raises(AssertionError):
            check_to_trace_properties(trace)

    def test_attribution_violation(self):
        trace = [
            act("bcast", "a", "p1"),
            act("brcv", "a", "p9", "p2"),
        ]
        with pytest.raises(AssertionError):
            check_to_trace_properties(trace)

    def test_duplicate_violation(self):
        trace = [
            act("bcast", "a", "p1"),
            act("brcv", "a", "p1", "p2"),
            act("brcv", "a", "p1", "p2"),
        ]
        with pytest.raises(AssertionError):
            check_to_trace_properties(trace)

    def test_divergent_orders_violation(self):
        trace = [
            act("bcast", "a", "p1"),
            act("bcast", "b", "p2"),
            act("brcv", "a", "p1", "p1"),
            act("brcv", "b", "p2", "p1"),
            act("brcv", "b", "p2", "p2"),
            act("brcv", "a", "p1", "p2"),
        ]
        with pytest.raises(AssertionError):
            check_to_trace_properties(trace)

    def test_lagging_prefix_ok(self):
        trace = [
            act("bcast", "a", "p1"),
            act("bcast", "b", "p2"),
            act("brcv", "a", "p1", "p1"),
            act("brcv", "b", "p2", "p1"),
            act("brcv", "a", "p1", "p2"),  # p2 lags -- fine
        ]
        check_to_trace_properties(trace)
