"""Deterministic replay on synthetic traces.

These tests drive :func:`repro.checking.replay.replay_trace` with
hand-built traces, pinning the dispatch semantics the ddmin shrinker
depends on (unknown pids skipped, layer errors recorded not raised,
restarts reset the monitor's view of a pid).  End-to-end replay of
*recorded* live runs lives in tests/integration/test_live_chaos.py.
"""

import pytest

from repro.core.viewids import ViewId
from repro.core.views import View
from repro.checking.replay import (
    DVS_FACTORIES,
    check_replay_determinism,
    dvs_factory_name,
    replay_trace,
    shrink_replay,
)
from repro.dvs.ablation import NoMajorityDvsLayer
from repro.gcs.dvs_layer import DvsLayer
from repro.obs.record import ReplayTrace, TraceError, TraceEvent

PIDS = ("p1", "p2", "p3")
VIEW = View(ViewId(0, "p1"), frozenset(PIDS))


def _trace(events, dvs="normal"):
    return ReplayTrace(PIDS, VIEW, events, dvs=dvs, source="test")


def _starts(*pids):
    return [TraceEvent(0.0, pid, "start", (True,)) for pid in pids]


class TestDispatch:
    def test_empty_trace_replays_clean(self):
        result = replay_trace(_trace([]))
        assert result.ok
        assert result.stats["dispatched"] == 0
        assert result.errors == []

    def test_unknown_dvs_is_trace_error(self):
        with pytest.raises(TraceError, match="unknown dvs"):
            replay_trace(_trace([], dvs="experimental"))

    def test_events_without_a_tower_are_skipped(self):
        # The shrinker may remove p2's start; its other events must not
        # crash the candidate replay.
        events = _starts("p1") + [
            TraceEvent(0.1, "p2", "bcast", (("w", "p2", 0),)),
            TraceEvent(0.2, "p2", "timer", ("hb",)),
            TraceEvent(0.3, "p2", "stop"),
        ]
        result = replay_trace(_trace(events))
        assert result.stats["skipped"] == 3
        assert result.stats["dispatched"] == 1
        assert result.errors == []

    def test_nemesis_events_are_annotations(self):
        events = _starts(*PIDS) + [
            TraceEvent(0.5, "*", "nemesis", ("heal",)),
        ]
        result = replay_trace(_trace(events))
        assert result.stats["dispatched"] == 3
        assert result.stats["skipped"] == 0

    def test_stop_tears_down_the_tower(self):
        events = _starts("p1") + [
            TraceEvent(0.1, "p1", "stop"),
            TraceEvent(0.2, "p1", "bcast", (("w", "p1", 0),)),
        ]
        result = replay_trace(_trace(events))
        assert result.stats["skipped"] == 1  # the post-stop bcast

    def test_restart_resets_the_monitor_incarnation(self):
        events = (
            _starts("p1")
            + [TraceEvent(0.2, "p1", "bcast", (("w", "p1", 0),))]
            + [TraceEvent(0.5, "p1", "start", (False,))]
            + [TraceEvent(0.7, "p1", "bcast", (("w", "p1", 1),))]
        )
        result = replay_trace(_trace(events))
        assert result.ok
        assert result.errors == []

    def test_layer_errors_are_recorded_not_raised(self):
        events = _starts("p1") + [
            TraceEvent(0.1, "p1", "recv", ("p2", object)),
        ]
        result = replay_trace(_trace(events))
        assert len(result.errors) == 1
        index, pid, kind, exc = result.errors[0]
        assert (index, pid, kind) == (1, "p1", "recv")
        assert isinstance(exc, Exception)


class TestDeterminism:
    def test_identical_digests_and_deliveries(self):
        events = _starts(*PIDS) + [
            TraceEvent(0.1, pid, "conn", (PIDS,)) for pid in PIDS
        ] + [
            TraceEvent(0.2 + i * 0.1, PIDS[i % 3], "bcast",
                       (("w", PIDS[i % 3], i),))
            for i in range(9)
        ]
        first, second = check_replay_determinism(_trace(events))
        assert first.digest == second.digest
        assert first.digest != ""
        assert first.stats == second.stats

    def test_different_inputs_different_digest(self):
        base = _starts(*PIDS)
        extra = base + [TraceEvent(0.2, "p1", "bcast", (("w", "p1", 0),))]
        assert (replay_trace(_trace(base)).digest
                != replay_trace(_trace(extra)).digest)


class TestShrink:
    def test_shrink_requires_a_failing_trace(self):
        with pytest.raises(ValueError, match="does not fail"):
            shrink_replay(_trace(_starts(*PIDS)), max_probes=20)

    def test_shrink_candidates_are_replayable_traces(self):
        events = _starts(*PIDS) + [
            TraceEvent(0.2, "p1", "bcast", (("w", "p1", 0),)),
        ]
        full = _trace(events)
        seen = []

        def spy(candidate):
            seen.append(candidate)
            replay_trace(candidate)  # every candidate must replay cleanly
            return len(candidate) == len(full)  # pretend only full fails

        from repro.faults.shrink import shrink_plan

        minimal, probes = shrink_plan(full, spy, max_probes=10)
        assert seen and all(isinstance(c, ReplayTrace) for c in seen)
        assert minimal == full  # nothing removable under this oracle


class TestFactoryRegistry:
    def test_names_round_trip(self):
        for name, cls in DVS_FACTORIES.items():
            assert dvs_factory_name(cls) == name

    def test_none_is_normal(self):
        assert dvs_factory_name(None) == "normal"
        assert DVS_FACTORIES["normal"] is DvsLayer
        assert DVS_FACTORIES["nomajority"] is NoMajorityDvsLayer

    def test_unregistered_factory_rejected(self):
        with pytest.raises(ValueError, match="not replayable"):
            dvs_factory_name(object)

    def test_cluster_dvs_names_agree_with_registry(self):
        # RuntimeCluster._dvs_name computes the header name locally (to
        # keep the runtime free of checking imports); it must stay in
        # lockstep with DVS_FACTORIES.
        from repro.runtime.cluster import RuntimeCluster

        cluster = RuntimeCluster.__new__(RuntimeCluster)
        cluster._dvs_factory = None
        assert cluster._dvs_name() == "normal"
        for name, cls in DVS_FACTORIES.items():
            cluster._dvs_factory = cls
            assert cluster._dvs_name() == name
