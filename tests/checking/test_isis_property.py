"""Experiment E9: DVS does not provide the Isis same-messages property.

Section 7 discusses the Isis guarantee (processes moving together between
views received exactly the same messages in the earlier view) and notes
that DVS deliberately omits it because totally ordered broadcast does not
need it.  These tests make both halves concrete: violations are reachable
in DVS executions, and the TO trace properties hold regardless.
"""

import pytest

from repro.checking.isis_property import (
    find_isis_counterexample,
    isis_violations,
)
from repro.core import make_view
from repro.ioa import act


class TestViolationSearch:
    def test_dvs_executions_violate_isis(self):
        result = find_isis_counterexample(max_seeds=10, steps=2000)
        assert result is not None, (
            "no Isis violation found -- DVS would be stronger than stated"
        )
        seed, violations, execution = result
        violation = violations[0]
        assert violation.only_first or violation.only_second

    def test_to_unharmed_on_violating_execution(self):
        from repro.checking import check_dvs_trace_properties

        result = find_isis_counterexample(max_seeds=10, steps=2000)
        assert result is not None
        _, _, execution = result
        # The DVS guarantees still hold on the very same execution.
        check_dvs_trace_properties(
            execution.trace(), make_view(0, ["p1", "p2", "p3"])
        )


class TestDetector:
    def _trace(self, v0, v1, deliveries_p1, deliveries_p2):
        trace = []
        for m, q in deliveries_p1:
            trace.append(act("dvs_gprcv", m, q, "p1"))
        for m, q in deliveries_p2:
            trace.append(act("dvs_gprcv", m, q, "p2"))
        trace.append(act("dvs_newview", v1, "p1"))
        trace.append(act("dvs_newview", v1, "p2"))
        return trace

    def test_equal_deliveries_ok(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        trace = self._trace(v0, v1, [("m", "p2")], [("m", "p2")])
        assert isis_violations(trace, v0) == []

    def test_diverging_deliveries_detected(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        trace = self._trace(v0, v1, [("m", "p2")], [])
        violations = isis_violations(trace, v0)
        assert len(violations) == 1
        assert violations[0].earlier_view == v0
        assert violations[0].later_view == v1

    def test_processes_moving_differently_not_compared(self):
        # p2 skips v1 entirely: no pair moves together, no violation.
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1"})
        trace = [
            act("dvs_gprcv", "m", "p2", "p1"),
            act("dvs_newview", v1, "p1"),
        ]
        assert isis_violations(trace, v0) == []

    def test_str_rendering(self):
        v0 = make_view(0, {"p1", "p2"})
        v1 = make_view(1, {"p1", "p2"})
        trace = self._trace(v0, v1, [("m", "p2")], [])
        text = str(isis_violations(trace, v0)[0])
        assert "moved" in text and "p1" in text
