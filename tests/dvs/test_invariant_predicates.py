"""The DVS invariant predicates must *detect* violations.

Each paper invariant gets a hand-built violating state; a predicate that
cannot reject it would make the randomized/exhaustive campaigns vacuous.
"""

import pytest

from repro.core import make_view
from repro.core.tables import Table
from repro.dvs.invariants import invariant_4_1, invariant_4_2
from repro.dvs.spec import DVSState
from repro.ioa import State


def dvs_state(universe=("p1", "p2", "p3", "p4")):
    v0 = make_view(0, universe)
    return DVSState(v0, sorted(universe)), v0


class TestInvariant41:
    def test_disjoint_without_separation_rejected(self):
        state, v0 = dvs_state()
        a = make_view(1, {"p1", "p2"})
        b = make_view(2, {"p3", "p4"})
        state.created |= {a, b}
        with pytest.raises(AssertionError):
            invariant_4_1(state)

    def test_disjoint_with_intervening_tot_reg_ok(self):
        state, v0 = dvs_state()
        a = make_view(1, {"p1", "p2"})
        x = make_view(2, {"p1", "p3"})
        b = make_view(3, {"p3", "p4"})
        state.created |= {a, x, b}
        # x totally registered separates a and b; but b must still
        # intersect x, and a–x / x–b pairs intersect.
        state.registered[x.id] = frozenset(x.set)
        assert invariant_4_1(state)

    def test_overlapping_views_ok(self):
        state, v0 = dvs_state()
        state.created |= {
            make_view(1, {"p1", "p2"}),
            make_view(2, {"p2", "p3"}),
        }
        assert invariant_4_1(state)


class TestInvariant42:
    def test_stale_members_with_totally_attempted_later_view_rejected(self):
        state, v0 = dvs_state()
        w = make_view(1, {"p1", "p2"})
        state.created.add(w)
        state.attempted[w.id] = frozenset(w.set)  # totally attempted
        # ...but every member of v0 still has current-viewid g0.
        with pytest.raises(AssertionError):
            invariant_4_2(state)

    def test_advanced_member_satisfies(self):
        state, v0 = dvs_state()
        w = make_view(1, {"p1", "p2"})
        state.created.add(w)
        state.attempted[w.id] = frozenset(w.set)
        state.current_viewid["p1"] = w.id
        assert invariant_4_2(state)

    def test_partial_attempt_not_constrained(self):
        state, v0 = dvs_state()
        w = make_view(1, {"p1", "p2"})
        state.created.add(w)
        state.attempted[w.id] = frozenset({"p1"})
        assert invariant_4_2(state)


class TestToInvariantPredicates:
    def _impl(self):
        from repro.to.impl import build_to_impl

        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        system = build_to_impl(v0, universe)
        return system, system.initial_state(), universe, v0

    def test_6_1_rejects_summary_of_uncreated_view(self):
        from repro.core.viewids import ViewId
        from repro.to.impl import ToImplState
        from repro.to.invariants import invariant_6_1
        from repro.to.summaries import Summary

        system, state, universe, v0 = self._impl()
        ghost = Summary(con=frozenset(), ord=(), next=1,
                        high=ViewId(9, "zz"))
        state.part("dvs_to_to:p1").gotstate["p2"] = ghost
        with pytest.raises(AssertionError):
            invariant_6_1(ToImplState(state, universe))

    def test_6_2_rejects_establishment_without_movement(self):
        from repro.to.impl import ToImplState
        from repro.to.invariants import invariant_6_2
        from repro.to.summaries import Summary

        system, state, universe, v0 = self._impl()
        w = make_view(1, universe)
        dvs = state.part("dvs")
        dvs.created.add(w)
        dvs.attempted[w.id] = frozenset(w.set)
        # A summary claims w is established, but nobody moved past v0.
        high = Summary(con=frozenset(), ord=(), next=1, high=w.id)
        state.part("dvs_to_to:p1").gotstate["p2"] = high
        with pytest.raises(AssertionError):
            invariant_6_2(ToImplState(state, universe))

    def test_confirmed_prefix_divergence_rejected(self):
        from repro.core.viewids import ViewId
        from repro.to.impl import ToImplState
        from repro.to.invariants import confirmed_prefixes_consistent
        from repro.to.summaries import Label

        system, state, universe, v0 = self._impl()
        l1 = Label(v0.id, 1, "p1")
        l2 = Label(v0.id, 1, "p2")
        app1 = state.part("dvs_to_to:p1")
        app2 = state.part("dvs_to_to:p2")
        app1.order = [l1]
        app1.nextconfirm = 2
        app2.order = [l2]
        app2.nextconfirm = 2
        with pytest.raises(AssertionError):
            confirmed_prefixes_consistent(ToImplState(state, universe))
