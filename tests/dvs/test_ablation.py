"""Experiment E7: the paper's preconditions are all load-bearing.

Each ablated variant of ``VS-TO-DVS_p`` removes one mechanism; randomized
executions then violate the corresponding safety invariant, while the
faithful algorithm (tests/dvs/test_dvs_impl.py) never does on the same
adversaries.
"""

import pytest

from repro.core import make_view
from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.dvs.ablation import (
    EagerGarbageCollectVsToDvs,
    NoInfoWaitVsToDvs,
    NoMajorityCheckVsToDvs,
    StaticMajorityFilter,
)
from repro.dvs.invariants import (
    _wrap,
    invariant_5_1,
    invariant_5_2,
    invariant_5_4,
    invariant_5_6,
)
from repro.ioa import InvariantSuite, run_random
from repro.ioa.errors import InvariantViolation

UNIVERSE = ["p1", "p2", "p3", "p4", "p5"]
WEIGHTS = {
    "vs_createview": 0.4,
    "vs_newview": 1.5,
    "dvs_register": 2.5,
    "dvs_garbage_collect": 2.5,
    "dvs_newview": 2.0,
}


def hunt(factory, suite_factory, seeds, min_size=1):
    """Search seeds for an invariant violation; return the first found."""
    v0 = make_view(0, UNIVERSE)
    for seed in seeds:
        pool = random_view_pool(
            UNIVERSE, 7, seed=seed * 13 + 1, min_size=min_size
        )
        system, procs = build_closed_dvs_impl(
            v0,
            UNIVERSE,
            view_pool=pool,
            budget=1,
            eager_register=True,
            filter_factory=factory,
        )
        suite = suite_factory(procs)
        ex = run_random(system, 2500, seed=seed, weights=WEIGHTS)
        try:
            suite.check_execution(ex)
        except InvariantViolation as violation:
            return violation
    return None


class TestNoMajorityCheck:
    def test_disjoint_primaries_reachable(self):
        """Weakening majority to nonempty intersection admits two disjoint
        attempted primaries with no totally registered view between them
        (Invariant 5.6 violated)."""
        violation = hunt(
            NoMajorityCheckVsToDvs,
            lambda procs: InvariantSuite(
                {"5.6": _wrap(procs, invariant_5_6)}
            ),
            seeds=range(6),
        )
        assert violation is not None
        assert "disjoint" in str(violation)


class TestNoInfoWait:
    def test_chained_majority_violated(self):
        """Attempting without everyone's info breaks Invariant 5.4: the
        new view need no longer hold a majority of a view attempted by a
        common member."""
        violation = hunt(
            NoInfoWaitVsToDvs,
            lambda procs: InvariantSuite(
                {
                    "5.1": _wrap(procs, invariant_5_1),
                    "5.4": _wrap(procs, invariant_5_4),
                }
            ),
            seeds=range(6),
        )
        assert violation is not None


class TestEagerGarbageCollection:
    def test_act_leaves_tot_reg(self):
        """Advancing ``act`` without registration evidence immediately
        breaks Invariant 5.2 part 1 (``act ∈ TotReg``), the anchor of the
        paper's information-flow argument."""
        violation = hunt(
            EagerGarbageCollectVsToDvs,
            lambda procs: InvariantSuite(
                {"5.2": _wrap(procs, invariant_5_2)}
            ),
            seeds=range(6),
        )
        assert violation is not None
        assert "totally registered" in str(violation)

    def test_disjoint_primaries_by_script(self):
        """A scripted run showing the end-to-end failure: with eager
        garbage collection, the branch {p1,p2} keeps forming primaries
        against its own shrunken ``act`` while {p3,p4,p5} forms one
        against v0 -- two live disjoint primaries (Invariant 5.6).

        The script drives the composition action by action: v1={p1,p2,p3}
        is attempted and eagerly collected at p1/p2 (p3 receives the VS
        view, sends info, but never attempts), then v2={p1,p2} is
        attempted against act=v1, then v3={p3,p4,p5} is attempted against
        act=v0 at its members.
        """
        from repro.ioa import act

        v0 = make_view(0, UNIVERSE)
        v1 = make_view(1, {"p1", "p2", "p3"})
        v2 = make_view(2, {"p1", "p2"})
        v3 = make_view(3, {"p3", "p4", "p5"})
        system, procs = build_closed_dvs_impl(
            v0,
            UNIVERSE,
            view_pool=[v1, v2, v3],
            budget=0,
            filter_factory=EagerGarbageCollectVsToDvs,
        )
        s = system.initial_state()

        def do(state, *actions):
            for action in actions:
                state = system.apply(state, action)
            return state

        # v1 arrives at p1, p2, p3; infos flow; p1 and p2 attempt it.
        s = do(s, act("vs_createview", v1))
        for p in ["p1", "p2", "p3"]:
            s = do(s, act("vs_newview", v1, p))
        # Each member's info message moves through VS to the others.
        from repro.core.messages import InfoMsg

        info = InfoMsg(v0, frozenset())
        for p in ["p1", "p2", "p3"]:
            s = do(s, act("vs_gpsnd", info, p))
            s = do(s, act("vs_order", info, p, v1.id))
        for sender in ["p1", "p2", "p3"]:
            for receiver in ["p1", "p2", "p3"]:
                s = do(s, act("vs_gprcv", info, sender, receiver))
        s = do(s, act("dvs_newview", v1, "p1"))
        s = do(s, act("dvs_newview", v1, "p2"))
        # Eager GC at p1 and p2: act jumps to v1 with no registration.
        s = do(s, act("dvs_garbage_collect", v1, "p1"))
        s = do(s, act("dvs_garbage_collect", v1, "p2"))

        # v2 = {p1,p2}: a majority of v1, so the eager variant accepts.
        s = do(s, act("vs_createview", v2))
        for p in ["p1", "p2"]:
            s = do(s, act("vs_newview", v2, p))
        info_v1 = InfoMsg(v1, frozenset())
        for p in ["p1", "p2"]:
            s = do(s, act("vs_gpsnd", info_v1, p))
            s = do(s, act("vs_order", info_v1, p, v2.id))
        for sender in ["p1", "p2"]:
            for receiver in ["p1", "p2"]:
                s = do(s, act("vs_gprcv", info_v1, sender, receiver))
        s = do(s, act("dvs_newview", v2, "p1"))

        # v3 = {p3,p4,p5}: p4/p5 know only v0; p3 never attempted v1 so
        # its info still says act=v0 -- and the check passes against v0.
        s = do(s, act("vs_createview", v3))
        for p in ["p3", "p4", "p5"]:
            s = do(s, act("vs_newview", v3, p))
        # p3's amb does contain v1 only if p3 attempted it; it did not.
        for p in ["p3", "p4", "p5"]:
            s = do(s, act("vs_gpsnd", info, p))
            s = do(s, act("vs_order", info, p, v3.id))
        for sender in ["p3", "p4", "p5"]:
            for receiver in ["p3", "p4", "p5"]:
                s = do(s, act("vs_gprcv", info, sender, receiver))
        s = do(s, act("dvs_newview", v3, "p3"))

        # v2 and v3 are both attempted, disjoint, with TotReg = {v0} only.
        suite = InvariantSuite({"5.6": _wrap(procs, invariant_5_6)})
        with pytest.raises(InvariantViolation):
            suite.check_state(s)


class TestStaticMajorityFilterIsSafeButUnavailable:
    def test_static_filter_never_violates_intersection(self):
        violation = hunt(
            StaticMajorityFilter,
            lambda procs: InvariantSuite(
                {"5.6": _wrap(procs, invariant_5_6)}
            ),
            seeds=range(3),
        )
        assert violation is None

    def test_static_filter_rejects_minority_views(self):
        """After the universe halves, the dynamic filter accepts the
        surviving majority-of-previous view while the static one refuses
        everything below a static majority."""
        v0 = make_view(0, UNIVERSE)
        survivors = make_view(1, {"p1", "p2"})
        for factory, expected in [
            (StaticMajorityFilter, 0),
        ]:
            system, procs = build_closed_dvs_impl(
                v0,
                UNIVERSE,
                view_pool=[survivors],
                budget=0,
                eager_register=True,
                filter_factory=factory,
            )
            ex = run_random(system, 600, seed=0, weights=WEIGHTS)
            attempts = sum(
                1
                for a in ex.actions()
                if a.name == "dvs_newview" and a.params[0] == survivors
            )
            assert attempts == expected
