"""Coverage for the DVS-IMPL builder and derived-state accessors."""

import pytest

from repro.core import make_view
from repro.dvs import build_dvs_impl, dvs_impl_derived
from repro.dvs.impl import VS_EXTERNAL_ACTIONS, process_component_name


class TestBuilder:
    def test_signature_hides_vs(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_dvs_impl(v0, ["p1", "p2"])
        for name in VS_EXTERNAL_ACTIONS:
            assert name in system.internals
        assert "dvs_newview" in system.outputs
        assert "dvs_gpsnd" in system.inputs
        assert "dvs_register" in system.inputs

    def test_universe_extended_by_initial_view(self):
        v0 = make_view(0, ["p1", "p2", "p3"])
        system = build_dvs_impl(v0, ["p1"])
        names = {c.name for c in system.components}
        assert process_component_name("p3") in names

    def test_derived_state_accessors(self):
        v0 = make_view(0, ["p1", "p2"])
        system = build_dvs_impl(v0, ["p1", "p2"])
        impl = dvs_impl_derived(system.initial_state(), ["p1", "p2"])
        assert impl.created == {v0}
        assert impl.att == {v0}
        assert impl.tot_att == {v0}
        assert impl.tot_reg == {v0}
        assert impl.attempted_at("p1") == {v0}
        assert impl.reg_at("p1", v0.id) is True
        assert impl.proc("p1").cur == v0
        assert impl.vs.created == {v0}
