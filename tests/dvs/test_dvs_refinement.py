"""The mechanized Theorem 5.9: DVS-IMPL refines DVS via ℱ (Figure 4)."""

import pytest

from repro.core import make_view
from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.dvs import (
    dvs_refinement_checker,
    dvs_spec_invariants,
    refinement_f,
)
from repro.ioa import run_random


WEIGHTS = {
    "vs_createview": 0.2,
    "vs_newview": 1.0,
    "dvs_newview": 2.0,
    "dvs_register": 2.0,
    "dvs_garbage_collect": 1.5,
}


def run_impl(seed, universe=None, budget=2, steps=1200, pool_size=5):
    universe = universe or ["p1", "p2", "p3", "p4"]
    v0 = make_view(0, universe[:3])
    pool = random_view_pool(universe, pool_size, seed=seed + 11, min_size=2)
    system, procs = build_closed_dvs_impl(
        v0, universe, view_pool=pool, budget=budget
    )
    ex = run_random(system, steps, seed=seed, weights=WEIGHTS)
    return ex, procs, v0, universe


class TestInitialCorrespondence:
    def test_f_maps_initial_to_initial(self):
        ex, procs, v0, universe = run_impl(seed=0, steps=0)
        checker = dvs_refinement_checker(procs, v0, universe)
        checker.check_initial(ex.initial_state)


class TestStepCorrespondence:
    @pytest.mark.parametrize("seed", range(8))
    def test_theorem_5_9_along_random_executions(self, seed):
        ex, procs, v0, universe = run_impl(seed=seed)
        checker = dvs_refinement_checker(procs, v0, universe)
        total_abstract = checker.check_execution(ex)
        # Every external dvs_* action must appear in the abstract run too.
        externals = sum(
            1 for a in ex.actions() if a.name.startswith("dvs_")
            and a.name != "dvs_garbage_collect"
        )
        assert total_abstract >= externals

    def test_newview_of_fresh_view_uses_createview(self):
        from repro.dvs.refinement import lemma_5_8_hints

        ex, procs, v0, universe = run_impl(seed=3)
        checker = dvs_refinement_checker(procs, v0, universe)
        checker.check_initial(ex.initial_state)
        create_then_new = 0
        for step in ex.steps:
            fragment = checker.check_step(step)
            if step.action.name == "dvs_newview" and len(fragment) == 2:
                assert fragment[0].name == "dvs_createview"
                assert fragment[1].name == "dvs_newview"
                create_then_new += 1
        # At least the initial view changes exercise the two-step case.
        newviews = sum(1 for a in ex.actions() if a.name == "dvs_newview")
        if newviews:
            assert create_then_new >= 1


class TestAbstractStatesAreSpecReachable:
    @pytest.mark.parametrize("seed", range(4))
    def test_mapped_states_satisfy_spec_invariants(self, seed):
        """Invariants 4.1/4.2 hold on ℱ(s) for every reachable impl state.

        Together with Theorem 5.9 this is how the paper transfers the DVS
        guarantees to the implementation.
        """
        ex, procs, v0, universe = run_impl(seed=seed)
        mapping = refinement_f(procs, v0, universe)
        suite = dvs_spec_invariants()
        for state in ex.states():
            suite.check_state(mapping(state))

    def test_mapping_fields(self):
        ex, procs, v0, universe = run_impl(seed=1, steps=400)
        mapping = refinement_f(procs, v0, universe)
        t = mapping(ex.final_state)
        # created = union of attempted histories; always contains v0.
        assert v0 in t.created
        # registered/attempted tables only mention created view ids.
        created_ids = {v.id for v in t.created}
        for g in t.attempted.nondefault_items():
            assert g in created_ids
