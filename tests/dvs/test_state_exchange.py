"""Tests for the SX-DVS variation (Section 7 extension)."""

import pytest

from repro.core import make_view
from repro.checking import random_view_pool
from repro.checking.harness import build_closed_sx_dvs_impl
from repro.dvs import dvs_impl_invariants
from repro.dvs.spec import tot_reg
from repro.dvs.state_exchange import (
    SXDVSSpec,
    StateMsg,
    VsToSxDvs,
    bundle_of,
    sx_refinement_checker,
)
from repro.dvs.invariants import invariant_4_1, invariant_4_2
from repro.ioa import act, run_random
from repro.ioa.errors import ActionNotEnabled

UNIVERSE = ["p1", "p2", "p3"]


@pytest.fixture
def v0():
    return make_view(0, UNIVERSE)


@pytest.fixture
def spec(v0):
    return SXDVSSpec(v0, universe=UNIVERSE)


class TestSpecExchange:
    def test_sendstate_recorded_once(self, spec, v0):
        s = spec.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = spec.apply(s, act("dvs_createview", v1))
        s = spec.apply(s, act("dvs_newview", v1, "p1"))
        s = spec.apply(s, act("sx_sendstate", "snap1", "p1"))
        s = spec.apply(s, act("sx_sendstate", "other", "p1"))
        assert dict(s.snapshots.get(v1.id)) == {"p1": "snap1"}

    def test_statedelivery_needs_all_snapshots(self, spec, v0):
        s = spec.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = spec.apply(s, act("dvs_createview", v1))
        for p in ["p1", "p2"]:
            s = spec.apply(s, act("dvs_newview", v1, p))
        s = spec.apply(s, act("sx_sendstate", "s1", "p1"))
        assert not any(
            a.name == "sx_statedelivery" for a in spec.enabled_controlled(s)
        )
        s = spec.apply(s, act("sx_sendstate", "s2", "p2"))
        bundle = bundle_of({"p1": "s1", "p2": "s2"})
        assert spec.is_enabled(s, act("sx_statedelivery", bundle, "p1"))
        s = spec.apply(s, act("sx_statedelivery", bundle, "p1"))
        # Delivery IS registration.
        assert "p1" in s.registered.get(v1.id)
        # Only once per member.
        assert not spec.is_enabled(s, act("sx_statedelivery", bundle, "p1"))

    def test_statesafe_needs_everyone_registered(self, spec, v0):
        s = spec.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = spec.apply(s, act("dvs_createview", v1))
        for p in ["p1", "p2"]:
            s = spec.apply(s, act("dvs_newview", v1, p))
            s = spec.apply(s, act("sx_sendstate", "s" + p, p))
        bundle = bundle_of({"p1": "sp1", "p2": "sp2"})
        s = spec.apply(s, act("sx_statedelivery", bundle, "p1"))
        assert not spec.is_enabled(s, act("sx_statesafe", "p1"))
        s = spec.apply(s, act("sx_statedelivery", bundle, "p2"))
        assert v1 in tot_reg(s)
        s = spec.apply(s, act("sx_statesafe", "p1"))
        assert "p1" in s.statesafe.get(v1.id)

    def test_createview_precondition_inherited(self, spec, v0):
        s = spec.initial_state()
        with pytest.raises(ActionNotEnabled):
            spec.apply(s, act("dvs_createview", make_view(1, {"p9"})))

    def test_invariants_4x_hold_under_random_runs(self, v0):
        from repro.checking.drivers import SxClientDriver
        from repro.ioa.composition import Composition

        pool = random_view_pool(UNIVERSE, 4, seed=3, min_size=2)
        spec = SXDVSSpec(v0, universe=UNIVERSE, view_pool=pool)
        clients = [SxClientDriver(p, budget=2) for p in UNIVERSE]
        system = Composition([spec] + clients, name="closed_sxdvs")
        ex = run_random(system, 1500, seed=5,
                        weights={"dvs_createview": 0.1})
        for state in ex.states():
            part = state.part("dvs")
            invariant_4_1(part)
            invariant_4_2(part)


class TestImplementation:
    @pytest.mark.parametrize("seed", range(4))
    def test_invariants_and_refinement(self, v0, seed):
        pool = random_view_pool(UNIVERSE, 4, seed=seed + 9, min_size=2)
        system, procs = build_closed_sx_dvs_impl(
            v0, UNIVERSE, view_pool=pool, budget=2
        )
        ex = run_random(
            system, 2000, seed=seed,
            weights={"vs_createview": 0.1, "dvs_garbage_collect": 2.0},
        )
        dvs_impl_invariants(procs).check_execution(ex)
        sx_refinement_checker(procs, v0, UNIVERSE).check_execution(ex)

    def test_exchange_happens(self, v0):
        pool = random_view_pool(UNIVERSE, 3, seed=11, min_size=3)
        system, procs = build_closed_sx_dvs_impl(
            v0, UNIVERSE, view_pool=pool, budget=1
        )
        ex = run_random(system, 2500, seed=0,
                        weights={"vs_createview": 0.2})
        names = {a.name for a in ex.actions()}
        if "dvs_newview" in names:
            assert "sx_sendstate" in names
            assert "sx_statedelivery" in names

    def test_statemsg_is_protocol_message(self):
        from repro.core.messages import is_client_message

        assert not is_client_message(StateMsg("x"))

    def test_filter_initial_state(self, v0):
        flt = VsToSxDvs("p1", v0)
        s = flt.initial_state()
        assert s.delivered_bundle.get(v0.id) is True
        assert s.reported_safe.get(v0.id) is False
