"""The Figure 3 safe-forwarding gap (DESIGN.md §5), pinned as tests.

Figure 3 forwards the underlying VS-SAFE indication straight to the
client.  VS-SAFE witnesses delivery to every member's *filter*; DVS-SAFE
(Figure 2) requires delivery to every member's *client* (its precondition
quantifies over the specification's ``next`` pointers, which advance only
on DVS-GPRCV events).  A message can dwell in a filter's ``msgs-from-vs``
buffer -- or be discarded if the member never attempts the view -- so the
literal algorithm emits safe indications whose traces the DVS
specification cannot produce.  This refutes the literal Lemma 5.8 at
DVS-SAFE steps; the repair (end-to-end acknowledgments, the library
default) restores it.
"""

import pytest

from repro.core import make_view
from repro.checking import build_closed_dvs_impl, random_view_pool
from repro.dvs import dvs_refinement_checker
from repro.dvs.vs_to_dvs import LiteralSafeVsToDvs, VsToDvs
from repro.ioa import act, run_random
from repro.ioa.errors import RefinementFailure

UNIVERSE = ["p1", "p2", "p3", "p4"]
V0 = make_view(0, UNIVERSE[:3])


def falsifying_run(filter_factory):
    """The execution hypothesis found (seed 0, singleton-capable pool)."""
    pool = random_view_pool(UNIVERSE, 4, seed=0, min_size=1)
    system, procs = build_closed_dvs_impl(
        V0, UNIVERSE, view_pool=pool, budget=1,
        filter_factory=filter_factory,
    )
    execution = run_random(
        system, 700, seed=0,
        weights={
            "vs_createview": 0.125,
            "dvs_register": 2.0,
            "dvs_garbage_collect": 2.0,
        },
    )
    return execution, procs


class TestLiteralAlgorithmFailsLemma58:
    def test_counterexample(self):
        execution, procs = falsifying_run(LiteralSafeVsToDvs)
        checker = dvs_refinement_checker(
            procs, V0, UNIVERSE, literal_safe=True
        )
        with pytest.raises(RefinementFailure) as excinfo:
            checker.check_execution(execution)
        assert excinfo.value.step.action.name == "dvs_safe"

    def test_minimal_scripted_counterexample(self):
        """Hand-built: p2 multicasts m in v0; the VS layer delivers m to
        every filter and declares it VS-safe; p3's literal filter forwards
        DVS-SAFE while p1's copy still sits in msgs-from-vs -- at that
        point the DVS specification's SAFE precondition is false and no
        abstract fragment exists."""
        system, procs = build_closed_dvs_impl(
            V0, UNIVERSE[:3], budget=1,
            filter_factory=LiteralSafeVsToDvs,
        )
        s = system.initial_state()
        m = ("m", "p2", 0)

        def do(*actions):
            nonlocal s
            for action in actions:
                s = system.apply(s, action)

        do(act("dvs_gpsnd", m, "p2"))
        do(act("vs_gpsnd", m, "p2"))
        do(act("vs_order", m, "p2", V0.id))
        for r in ["p1", "p2", "p3"]:
            do(act("vs_gprcv", m, "p2", r))      # VS-level delivery
        do(act("dvs_gprcv", m, "p2", "p3"))       # only p3's client consumes
        do(act("vs_safe", m, "p2", "p3"))         # VS-safe reaches p3
        # p3's literal filter can now emit DVS-SAFE...
        assert system.is_enabled(s, act("dvs_safe", m, "p2", "p3"))
        from repro.ioa.execution import Execution, Step

        before = s
        after = system.apply(s, act("dvs_safe", m, "p2", "p3"))
        step = Step(before, act("dvs_safe", m, "p2", "p3"), after)
        checker = dvs_refinement_checker(
            procs, V0, UNIVERSE[:3], literal_safe=True
        )
        # ...but p1's client never received m: no DVS fragment matches.
        with pytest.raises(RefinementFailure):
            checker.check_step(step)


class TestRepairedAlgorithmPasses:
    def test_same_adversary_now_refines(self):
        execution, procs = falsifying_run(VsToDvs)
        checker = dvs_refinement_checker(procs, V0, UNIVERSE)
        checker.check_execution(execution)

    def test_repaired_filter_withholds_early_safe(self):
        """In the scripted scenario the repaired filter refuses the safe
        indication until *every* client has acknowledged."""
        system, procs = build_closed_dvs_impl(V0, UNIVERSE[:3], budget=1)
        s = system.initial_state()
        m = ("m", "p2", 0)

        def do(*actions):
            nonlocal s
            for action in actions:
                s = system.apply(s, action)

        do(act("dvs_gpsnd", m, "p2"))
        do(act("vs_gpsnd", m, "p2"))
        do(act("vs_order", m, "p2", V0.id))
        for r in ["p1", "p2", "p3"]:
            do(act("vs_gprcv", m, "p2", r))
        do(act("dvs_gprcv", m, "p2", "p3"))
        do(act("vs_safe", m, "p2", "p3"))
        assert not system.is_enabled(s, act("dvs_safe", m, "p2", "p3"))

        # Let every client consume and the acks circulate.
        from repro.dvs.vs_to_dvs import AckMsg

        do(act("dvs_gprcv", m, "p2", "p1"))
        do(act("dvs_gprcv", m, "p2", "p2"))
        for sender in ["p1", "p2", "p3"]:
            do(act("vs_gpsnd", AckMsg(1), sender))
            do(act("vs_order", AckMsg(1), sender, V0.id))
            do(act("vs_gprcv", AckMsg(1), sender, "p3"))
        assert system.is_enabled(s, act("dvs_safe", m, "p2", "p3"))
        # And the released indication refines the specification.
        checker = dvs_refinement_checker(procs, V0, UNIVERSE[:3])
        from repro.ioa.execution import Step

        after = system.apply(s, act("dvs_safe", m, "p2", "p3"))
        checker.check_step(Step(s, act("dvs_safe", m, "p2", "p3"), after))
