"""Unit and execution tests for the DVS specification (Figure 2)."""

import pytest

from repro.core import make_view
from repro.dvs import DVSSpec, dvs_spec_invariants, tot_reg
from repro.dvs.spec import attempted_views, reg_views, tot_att
from repro.checking import (
    build_closed_dvs_spec,
    check_dvs_trace_properties,
    grid_view_pool,
    random_view_pool,
)
from repro.ioa import BoundedExplorer, InvariantSuite, act, run_random
from repro.ioa.errors import ActionNotEnabled


@pytest.fixture
def dvs(v0):
    return DVSSpec(v0, universe={"p1", "p2", "p3"})


def register_all(dvs, state, view):
    for p in view.set:
        state = dvs.apply(state, act("dvs_newview", view, p))
        state = dvs.apply(state, act("dvs_register", p))
    return state


class TestCreateViewPrecondition:
    def test_duplicate_id_rejected(self, dvs, v0):
        s = dvs.initial_state()
        with pytest.raises(ActionNotEnabled):
            dvs.apply(s, act("dvs_createview", make_view(0, {"p1"})))

    def test_must_intersect_initial_view(self, dvs):
        s = dvs.initial_state()
        # {p1,p2} intersects v0: fine.
        s = dvs.apply(s, act("dvs_createview", make_view(1, {"p1", "p2"})))
        # A view disjoint from v0 (fresh process only) is rejected.
        with pytest.raises(ActionNotEnabled):
            dvs.apply(s, act("dvs_createview", make_view(2, {"p9"})))

    def test_out_of_order_creation_allowed(self, dvs):
        s = dvs.initial_state()
        s = dvs.apply(s, act("dvs_createview", make_view(5, {"p1", "p2"})))
        s = dvs.apply(s, act("dvs_createview", make_view(3, {"p2", "p3"})))
        assert len(s.created) == 3

    def test_total_registration_releases_intersection(self, dvs, v0):
        s = dvs.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = dvs.apply(s, act("dvs_createview", v1))
        s = register_all(dvs, s, v1)
        assert v1 in tot_reg(s)
        # v2 disjoint from v0 is now fine: v1 is totally registered and
        # lies between them ... but v2 must still intersect v1 itself.
        with pytest.raises(ActionNotEnabled):
            dvs.apply(s, act("dvs_createview", make_view(2, {"p3"})))
        s = dvs.apply(s, act("dvs_createview", make_view(2, {"p2", "p3"})))
        assert make_view(2, {"p2", "p3"}) in s.created

    def test_disjoint_from_old_view_allowed_after_intervening_tot_reg(
        self, dvs, v0
    ):
        s = dvs.initial_state()
        v1 = make_view(1, {"p1", "p2", "p3"})
        s = dvs.apply(s, act("dvs_createview", v1))
        s = register_all(dvs, s, v1)
        # v0 = {p1,p2,p3}; a new view {p1} intersects v1; its relation to
        # v0 is covered by the totally registered v1 in between?  v1.id is
        # not strictly between g0 and g2 relative to v0... it is: g0 < g1 < g2.
        s = dvs.apply(s, act("dvs_createview", make_view(2, {"p1"})))
        assert make_view(2, {"p1"}) in s.created


class TestRegisterAndDerived:
    def test_register_records_current_view(self, dvs, v0):
        s = dvs.initial_state()
        s = dvs.apply(s, act("dvs_register", "p1"))
        assert s.registered.get(v0.id) == v0.set  # already init-registered

    def test_derived_sets(self, dvs, v0):
        s = dvs.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = dvs.apply(s, act("dvs_createview", v1))
        assert attempted_views(s) == {v0}
        s = dvs.apply(s, act("dvs_newview", v1, "p1"))
        assert v1 in attempted_views(s)
        assert v1 not in tot_att(s)
        s = dvs.apply(s, act("dvs_newview", v1, "p2"))
        assert v1 in tot_att(s)
        assert v1 not in reg_views(s)
        s = dvs.apply(s, act("dvs_register", "p1"))
        assert v1 in reg_views(s)
        assert v1 not in tot_reg(s)
        s = dvs.apply(s, act("dvs_register", "p2"))
        assert v1 in tot_reg(s)

    def test_register_with_no_view_is_noop(self, v0):
        dvs = DVSSpec(v0, universe={"p1", "p2", "p3", "p9"})
        s = dvs.initial_state()
        s2 = dvs.apply(s, act("dvs_register", "p9"))
        assert s2 == s


class TestInvariantsUnderExecution:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs(self, v0, three_procs, seed):
        pool = random_view_pool(three_procs, 5, seed=seed + 40)
        system, procs = build_closed_dvs_spec(v0, three_procs, view_pool=pool)
        suite = dvs_spec_invariants()
        ex = run_random(
            system,
            1500,
            seed=seed,
            weights={"dvs_createview": 0.1, "dvs_newview": 0.7},
        )
        for state in ex.states():
            suite.check_state(state.part("dvs"))
        check_dvs_trace_properties(ex.trace(), v0)

    def test_exhaustive_small_config(self):
        v0 = make_view(0, {"p1", "p2"})
        pool = grid_view_pool({"p1", "p2"}, max_epoch=1)
        system, procs = build_closed_dvs_spec(
            v0, {"p1", "p2"}, view_pool=pool, budget=1
        )
        suite = dvs_spec_invariants()

        def lifted(state):
            suite.check_state(state.part("dvs"))
            return True

        result = BoundedExplorer(
            system,
            invariants=InvariantSuite({"dvs suite": lifted}),
            max_states=300000,
        ).explore()
        assert result.complete
        assert result.violation is None
        assert result.states_visited > 100
