"""Unit tests for the ``VS-TO-DVS_p`` automaton (Figure 3)."""

import pytest

from repro.core import make_view
from repro.core.messages import InfoMsg, RegisteredMsg
from repro.dvs.vs_to_dvs import VsToDvs, use_views
from repro.ioa import Kind, act


@pytest.fixture
def flt(v0):
    return VsToDvs("p1", v0)


class TestParticipation:
    def test_owns_only_its_actions(self, flt, v0):
        assert flt.participates(act("dvs_newview", v0, "p1"))
        assert not flt.participates(act("dvs_newview", v0, "p2"))
        assert flt.participates(act("vs_gprcv", "m", "p2", "p1"))
        assert not flt.participates(act("vs_gprcv", "m", "p1", "p2"))
        assert not flt.participates(act("unknown", "p1"))

    def test_kinds(self, flt, v0):
        assert flt.action_kind(act("vs_newview", v0, "p1")) is Kind.INPUT
        assert flt.action_kind(act("dvs_newview", v0, "p1")) is Kind.OUTPUT
        assert (
            flt.action_kind(act("dvs_garbage_collect", v0, "p1"))
            is Kind.INTERNAL
        )


class TestInitialState:
    def test_member_initial_state(self, flt, v0):
        s = flt.initial_state()
        assert s.cur == v0
        assert s.client_cur == v0
        assert s.act == v0
        assert s.amb == set()
        assert s.attempted == {v0}
        assert s.reg.get(v0.id) is True

    def test_non_member_initial_state(self, v0):
        outsider = VsToDvs("p9", v0)
        s = outsider.initial_state()
        assert s.cur is None
        assert s.client_cur is None
        assert s.act == v0  # act is V-valued (not bottom) in Figure 3
        assert s.attempted == set()


class TestViewArrival:
    def test_vs_newview_sends_info(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        assert s.cur == v1
        queued = s.msgs_to_vs.get(v1.id)
        assert queued == [InfoMsg(v0, frozenset())]
        assert s.info_sent.get(v1.id) == (v0, frozenset())

    def test_attempt_needs_info_from_all_others(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        assert not flt.is_enabled(s, act("dvs_newview", v1, "p1"))
        s = flt.apply(
            s, act("vs_gprcv", InfoMsg(v0, frozenset()), "p2", "p1")
        )
        assert flt.is_enabled(s, act("dvs_newview", v1, "p1"))

    def test_attempt_updates_client_state(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        s = flt.apply(
            s, act("vs_gprcv", InfoMsg(v0, frozenset()), "p2", "p1")
        )
        s = flt.apply(s, act("dvs_newview", v1, "p1"))
        assert s.client_cur == v1
        assert v1 in s.attempted
        assert v1 in s.amb

    def test_attempt_requires_majority_of_use(self, flt, v0):
        s = flt.initial_state()
        # v1 = {p1} is not a majority of v0 = {p1,p2,p3}.
        v1 = make_view(1, {"p1"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        assert not flt.is_enabled(s, act("dvs_newview", v1, "p1"))

    def test_no_singleton_primary_from_pair(self, v0):
        # After act shrinks to {p1,p2}, the view {p1} is still NOT
        # attemptable: a strict majority of a 2-member view is both
        # members, so dynamic voting can never shrink a primary below two
        # processes (Jajodia-Mutchler observed the same of their scheme).
        flt = VsToDvs("p1", v0)
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        s = flt.apply(
            s, act("vs_gprcv", InfoMsg(v0, frozenset()), "p2", "p1")
        )
        s = flt.apply(s, act("dvs_newview", v1, "p1"))
        # v1 becomes totally registered from p1's perspective:
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p1", "p1"))
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p2", "p1"))
        s = flt.apply(s, act("dvs_garbage_collect", v1, "p1"))
        assert s.act == v1
        v2 = make_view(2, {"p1"})
        s = flt.apply(s, act("vs_newview", v2, "p1"))
        assert not flt.is_enabled(s, act("dvs_newview", v2, "p1"))


class TestInfoMerging:
    def test_act_advances_to_max(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        v3 = make_view(3, {"p1", "p2", "p3"})
        s = flt.apply(s, act("vs_newview", v3, "p1"))
        s = flt.apply(s, act("vs_gprcv", InfoMsg(v1, frozenset()), "p2", "p1"))
        assert s.act == v1

    def test_amb_merged_and_pruned(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        v2 = make_view(2, {"p2", "p3"})
        v3 = make_view(3, {"p1", "p2", "p3"})
        s = flt.apply(s, act("vs_newview", v3, "p1"))
        s = flt.apply(
            s, act("vs_gprcv", InfoMsg(v1, frozenset({v2})), "p2", "p1")
        )
        assert s.act == v1
        assert s.amb == {v2}
        assert use_views(s) == {v1, v2}

    def test_stale_info_does_not_regress(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        v3 = make_view(3, {"p1", "p2", "p3"})
        s = flt.apply(s, act("vs_newview", v3, "p1"))
        s = flt.apply(s, act("vs_gprcv", InfoMsg(v1, frozenset()), "p2", "p1"))
        s = flt.apply(s, act("vs_gprcv", InfoMsg(v0, frozenset()), "p3", "p1"))
        assert s.act == v1


class TestGarbageCollection:
    def test_needs_all_registered(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p1", "p1"))
        assert not flt.is_enabled(s, act("dvs_garbage_collect", v1, "p1"))
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p2", "p1"))
        assert flt.is_enabled(s, act("dvs_garbage_collect", v1, "p1"))

    def test_gc_prunes_amb(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        s = flt.apply(s, act("vs_gprcv", InfoMsg(v0, frozenset()), "p2", "p1"))
        s = flt.apply(s, act("dvs_newview", v1, "p1"))
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p1", "p1"))
        s = flt.apply(s, act("vs_gprcv", RegisteredMsg(), "p2", "p1"))
        s = flt.apply(s, act("dvs_garbage_collect", v1, "p1"))
        assert s.act == v1
        assert s.amb == set()


class TestClientTraffic:
    def test_register_queues_registered_message(self, flt, v0):
        s = flt.initial_state()
        s = flt.apply(s, act("dvs_register", "p1"))
        assert s.reg.get(v0.id) is True
        assert RegisteredMsg() in s.msgs_to_vs.get(v0.id)

    def test_send_buffered_then_sent(self, flt, v0):
        s = flt.initial_state()
        s = flt.apply(s, act("dvs_gpsnd", "m1", "p1"))
        assert "m1" in s.msgs_to_vs.get(v0.id)
        assert flt.is_enabled(s, act("vs_gpsnd", "m1", "p1"))
        s = flt.apply(s, act("vs_gpsnd", "m1", "p1"))
        assert "m1" not in s.msgs_to_vs.get(v0.id)

    def test_client_delivery_round_trip(self, flt, v0):
        s = flt.initial_state()
        s = flt.apply(s, act("vs_gprcv", "m1", "p2", "p1"))
        assert s.msgs_from_vs.get(v0.id) == [("m1", "p2")]
        assert flt.is_enabled(s, act("dvs_gprcv", "m1", "p2", "p1"))
        s = flt.apply(s, act("dvs_gprcv", "m1", "p2", "p1"))
        assert s.msgs_from_vs.get(v0.id) == []

    def test_safe_needs_acks_from_all_members(self, flt, v0):
        """The repaired safe rule: VS-SAFE alone is not enough; the safe
        indication is released once every member's client acknowledged."""
        from repro.dvs.vs_to_dvs import AckMsg

        s = flt.initial_state()
        s = flt.apply(s, act("vs_gprcv", "m1", "p2", "p1"))
        s = flt.apply(s, act("dvs_gprcv", "m1", "p2", "p1"))
        s = flt.apply(s, act("vs_safe", "m1", "p2", "p1"))
        assert not flt.is_enabled(s, act("dvs_safe", "m1", "p2", "p1"))
        for q in ["p1", "p2"]:
            s = flt.apply(s, act("vs_gprcv", AckMsg(1), q, "p1"))
        assert not flt.is_enabled(s, act("dvs_safe", "m1", "p2", "p1"))
        s = flt.apply(s, act("vs_gprcv", AckMsg(1), "p3", "p1"))
        assert flt.is_enabled(s, act("dvs_safe", "m1", "p2", "p1"))
        s = flt.apply(s, act("dvs_safe", "m1", "p2", "p1"))
        assert s.safe_ptr.get(v0.id) == 1
        # Released once only.
        assert not flt.is_enabled(s, act("dvs_safe", "m1", "p2", "p1"))

    def test_client_consumption_sends_ack(self, flt, v0):
        from repro.dvs.vs_to_dvs import AckMsg

        s = flt.initial_state()
        s = flt.apply(s, act("vs_gprcv", "m1", "p2", "p1"))
        s = flt.apply(s, act("dvs_gprcv", "m1", "p2", "p1"))
        assert AckMsg(1) in s.msgs_to_vs.get(v0.id)
        assert s.client_delivered.get(v0.id) == [("m1", "p2")]

    def test_literal_variant_forwards_vs_safe(self, v0):
        from repro.dvs.vs_to_dvs import LiteralSafeVsToDvs

        flt = LiteralSafeVsToDvs("p1", v0)
        s = flt.initial_state()
        s = flt.apply(s, act("vs_safe", "m1", "p2", "p1"))
        assert flt.is_enabled(s, act("dvs_safe", "m1", "p2", "p1"))
        s = flt.apply(s, act("dvs_safe", "m1", "p2", "p1"))
        assert s.safe_from_vs.get(v0.id) == []

    def test_messages_stranded_across_views(self, flt, v0):
        s = flt.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = flt.apply(s, act("vs_newview", v1, "p1"))
        # client_cur is still v0: client messages target v0, which VS has
        # abandoned at p1.
        s = flt.apply(s, act("dvs_gpsnd", "m1", "p1"))
        assert "m1" in s.msgs_to_vs.get(v0.id)
        assert not flt.is_enabled(s, act("vs_gpsnd", "m1", "p1"))
