"""Execution tests for DVS-IMPL: Invariants 5.1-5.6 (Section 5.2)."""

import pytest

from repro.core import make_view
from repro.checking import (
    build_closed_dvs_impl,
    check_dvs_trace_properties,
    grid_view_pool,
    random_view_pool,
)
from repro.dvs import dvs_impl_invariants, dvs_impl_derived
from repro.ioa import BoundedExplorer, InvariantSuite, run_random


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_invariants_hold_under_churn(self, seed):
        universe = ["p1", "p2", "p3", "p4"]
        v0 = make_view(0, universe[:3])
        pool = random_view_pool(universe, 5, seed=seed + 7, min_size=2)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=2
        )
        suite = dvs_impl_invariants(procs)
        ex = run_random(
            system,
            1500,
            seed=seed,
            weights={
                "vs_createview": 0.2,
                "vs_newview": 1.0,
                "dvs_newview": 2.0,
                "dvs_register": 2.0,
                "dvs_garbage_collect": 1.5,
            },
        )
        suite.check_execution(ex)
        check_dvs_trace_properties(ex.trace(), v0)

    @pytest.mark.parametrize("seed", range(4))
    def test_invariants_hold_with_eager_registration(self, seed):
        universe = ["p1", "p2", "p3", "p4", "p5"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 6, seed=seed + 19, min_size=1)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=1, eager_register=True
        )
        suite = dvs_impl_invariants(procs)
        ex = run_random(
            system,
            2000,
            seed=seed,
            weights={
                "vs_createview": 0.3,
                "vs_newview": 1.5,
                "dvs_register": 2.5,
                "dvs_garbage_collect": 2.5,
                "dvs_newview": 2.0,
            },
        )
        suite.check_execution(ex)


class TestDerivedVariables:
    def test_initial_derived_variables(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        system, procs = build_closed_dvs_impl(v0, universe)
        impl = dvs_impl_derived(system.initial_state(), procs)
        assert impl.att == {v0}
        assert impl.tot_att == {v0}
        assert impl.reg_views == {v0}
        assert impl.tot_reg == {v0}

    def test_attempts_tracked(self):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = [make_view(1, {"p1", "p2"})]
        system, procs = build_closed_dvs_impl(v0, universe, view_pool=pool)
        ex = run_random(
            system, 800, seed=3, weights={"vs_createview": 0.5}
        )
        impl = dvs_impl_derived(ex.final_state, procs)
        # Whatever happened, derived sets are internally consistent.
        assert impl.tot_att <= impl.att
        assert impl.tot_reg <= impl.reg_views
        assert impl.att <= impl.created


class TestExhaustive:
    def test_two_process_universe_fully_explored(self):
        universe = ["p1", "p2"]
        v0 = make_view(0, universe)
        pool = grid_view_pool(universe, max_epoch=1, min_size=2)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=1, eager_register=True
        )
        suite = dvs_impl_invariants(procs)
        result = BoundedExplorer(
            system, invariants=suite, max_states=60000
        ).explore()
        assert result.violation is None
        assert result.states_visited > 500
