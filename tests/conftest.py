"""Shared fixtures for the test suite."""

import pytest

from repro.core import make_view
from repro.core.viewids import ViewId
from repro.core.views import View


@pytest.fixture
def three_procs():
    return ["p1", "p2", "p3"]


@pytest.fixture
def five_procs():
    return ["p1", "p2", "p3", "p4", "p5"]


@pytest.fixture
def v0(three_procs):
    return make_view(0, three_procs)


@pytest.fixture
def v0_five(five_procs):
    return make_view(0, five_procs)


def view(epoch, members, origin=""):
    """Test helper: a view with a bare-epoch identifier."""
    return View(ViewId(epoch, origin), frozenset(members))
