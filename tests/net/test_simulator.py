"""Unit tests for the network simulator."""

import pytest

from repro.net import Network, Node


class Echo(Node):
    """Records everything; replies to ``ping`` with ``pong``."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []
        self.connectivity = []
        self.timers = []

    def on_message(self, src, msg):
        self.received.append((src, msg))
        if msg == "ping":
            self.send(src, "pong")

    def on_connectivity(self, component):
        self.connectivity.append(component)

    def on_timer(self, tag):
        self.timers.append(tag)


def make_net(n=3, seed=0):
    net = Network(seed=seed)
    nodes = {p: net.add_node(Echo(p)) for p in ["a", "b", "c"][:n]}
    net.start()
    return net, nodes


class TestMessaging:
    def test_round_trip(self):
        net, nodes = make_net()
        nodes["a"].send("b", "ping")
        net.run_to_quiescence()
        assert ("a", "ping") in nodes["b"].received
        assert ("b", "pong") in nodes["a"].received

    def test_fifo_per_channel(self):
        net, nodes = make_net()
        for i in range(5):
            nodes["a"].send("b", ("m", i))
        net.run_to_quiescence()
        payloads = [m for _, m in nodes["b"].received]
        assert payloads == [("m", i) for i in range(5)]

    def test_deterministic_given_seed(self):
        logs = []
        for _ in range(2):
            net, nodes = make_net(seed=42)
            nodes["a"].send("b", "ping")
            nodes["b"].send("c", "x")
            net.run_to_quiescence()
            logs.append([(k, d) for _, k, d in net.log])
        assert logs[0] == logs[1]

    def test_self_send_allowed(self):
        net, nodes = make_net()
        nodes["a"].send("a", "hi")
        net.run_to_quiescence()
        assert ("a", "hi") in nodes["a"].received


class TestPartitions:
    def test_cross_partition_messages_dropped(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        nodes["a"].send("b", "lost")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        kinds = [k for _, k, _ in net.log]
        assert "drop" in kinds

    def test_within_partition_delivery(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        nodes["b"].send("c", "ok")
        net.run_to_quiescence()
        assert ("b", "ok") in nodes["c"].received

    def test_connectivity_notifications(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        assert nodes["a"].connectivity[-1] == frozenset({"a"})
        assert nodes["b"].connectivity[-1] == frozenset({"b", "c"})
        net.heal()
        assert nodes["a"].connectivity[-1] == frozenset({"a", "b", "c"})

    def test_components_listing(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        comps = {tuple(sorted(c)) for c in net.components()}
        assert comps == {("a",), ("b", "c")}

    def test_in_flight_message_dropped_at_partition(self):
        net, nodes = make_net()
        nodes["a"].send("b", "late")
        net.partition([{"a"}, {"b", "c"}])  # before delivery fires
        net.run_to_quiescence()
        assert nodes["b"].received == []


class TestCrashes:
    def test_crashed_node_receives_nothing(self):
        net, nodes = make_net()
        net.crash("b")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert nodes["b"].received == []

    def test_crashed_node_sends_nothing(self):
        net, nodes = make_net()
        net.crash("a")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert nodes["b"].received == []

    def test_recovery_rejoins_component(self):
        net, nodes = make_net()
        net.crash("b")
        net.recover("b")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert ("a", "x") in nodes["b"].received

    def test_crash_triggers_connectivity_update(self):
        net, nodes = make_net()
        net.crash("c")
        assert nodes["a"].connectivity[-1] == frozenset({"a", "b"})


class TestTimers:
    def test_timer_fires(self):
        net, nodes = make_net()
        nodes["a"].set_timer(5, "wake")
        net.run_until(10)
        assert nodes["a"].timers == ["wake"]

    def test_timer_suppressed_for_crashed(self):
        net, nodes = make_net()
        nodes["a"].set_timer(5, "wake")
        net.crash("a")
        net.run_until(10)
        assert nodes["a"].timers == []

    def test_cancel_timer(self):
        net, nodes = make_net()
        handle = nodes["a"].set_timer(5, "wake")
        net.cancel_timer(handle)
        net.run_until(10)
        assert nodes["a"].timers == []


class TestTopology:
    def test_duplicate_pid_rejected(self):
        net = Network()
        net.add_node(Echo("a"))
        with pytest.raises(ValueError):
            net.add_node(Echo("a"))

    def test_component_of_crashed_is_empty(self):
        net, nodes = make_net()
        net.crash("a")
        assert net.component("a") == frozenset()
