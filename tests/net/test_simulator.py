"""Unit tests for the network simulator."""

import pytest

from repro.net import Network, Node


class Echo(Node):
    """Records everything; replies to ``ping`` with ``pong``."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []
        self.connectivity = []
        self.timers = []

    def on_message(self, src, msg):
        self.received.append((src, msg))
        if msg == "ping":
            self.send(src, "pong")

    def on_connectivity(self, component):
        self.connectivity.append(component)

    def on_timer(self, tag):
        self.timers.append(tag)


def make_net(n=3, seed=0):
    net = Network(seed=seed)
    nodes = {p: net.add_node(Echo(p)) for p in ["a", "b", "c"][:n]}
    net.start()
    return net, nodes


class TestMessaging:
    def test_round_trip(self):
        net, nodes = make_net()
        nodes["a"].send("b", "ping")
        net.run_to_quiescence()
        assert ("a", "ping") in nodes["b"].received
        assert ("b", "pong") in nodes["a"].received

    def test_fifo_per_channel(self):
        net, nodes = make_net()
        for i in range(5):
            nodes["a"].send("b", ("m", i))
        net.run_to_quiescence()
        payloads = [m for _, m in nodes["b"].received]
        assert payloads == [("m", i) for i in range(5)]

    def test_deterministic_given_seed(self):
        logs = []
        for _ in range(2):
            net, nodes = make_net(seed=42)
            nodes["a"].send("b", "ping")
            nodes["b"].send("c", "x")
            net.run_to_quiescence()
            logs.append([(k, d) for _, k, d in net.log])
        assert logs[0] == logs[1]

    def test_self_send_allowed(self):
        net, nodes = make_net()
        nodes["a"].send("a", "hi")
        net.run_to_quiescence()
        assert ("a", "hi") in nodes["a"].received


class TestPartitions:
    def test_cross_partition_messages_dropped(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        nodes["a"].send("b", "lost")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        kinds = [k for _, k, _ in net.log]
        assert "drop" in kinds

    def test_within_partition_delivery(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        nodes["b"].send("c", "ok")
        net.run_to_quiescence()
        assert ("b", "ok") in nodes["c"].received

    def test_connectivity_notifications(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        assert nodes["a"].connectivity[-1] == frozenset({"a"})
        assert nodes["b"].connectivity[-1] == frozenset({"b", "c"})
        net.heal()
        assert nodes["a"].connectivity[-1] == frozenset({"a", "b", "c"})

    def test_components_listing(self):
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        comps = {tuple(sorted(c)) for c in net.components()}
        assert comps == {("a",), ("b", "c")}

    def test_in_flight_message_dropped_at_partition(self):
        net, nodes = make_net()
        nodes["a"].send("b", "late")
        net.partition([{"a"}, {"b", "c"}])  # before delivery fires
        net.run_to_quiescence()
        assert nodes["b"].received == []


class TestCrashes:
    def test_crashed_node_receives_nothing(self):
        net, nodes = make_net()
        net.crash("b")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert nodes["b"].received == []

    def test_crashed_node_sends_nothing(self):
        net, nodes = make_net()
        net.crash("a")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert nodes["b"].received == []

    def test_recovery_rejoins_component(self):
        net, nodes = make_net()
        net.crash("b")
        net.recover("b")
        nodes["a"].send("b", "x")
        net.run_to_quiescence()
        assert ("a", "x") in nodes["b"].received

    def test_crash_triggers_connectivity_update(self):
        net, nodes = make_net()
        net.crash("c")
        assert nodes["a"].connectivity[-1] == frozenset({"a", "b"})


class TestPartitionDeliveryTime:
    """Partitions act at delivery time, in both directions."""

    def test_sent_during_partition_delivered_after_heal(self):
        """A message queued across a partition survives if the partition
        heals before the delivery event fires."""
        net, nodes = make_net()
        net.partition([{"a"}, {"b", "c"}])
        nodes["a"].send("b", "early")
        net.heal()  # before any delivery latency has elapsed
        net.run_to_quiescence()
        assert ("a", "early") in nodes["b"].received

    def test_mid_flight_partition_drops_every_queued_copy(self):
        net, nodes = make_net()
        for i in range(4):
            nodes["a"].send("b", ("m", i))
        net.partition([{"a"}, {"b", "c"}])
        net.run_to_quiescence()
        assert nodes["b"].received == []
        drops = [d for _, k, d in net.log if k == "drop"]
        assert len(drops) == 4


class TestTimers:
    def test_timer_fires(self):
        net, nodes = make_net()
        nodes["a"].set_timer(5, "wake")
        net.run_until(10)
        assert nodes["a"].timers == ["wake"]

    def test_timer_suppressed_for_crashed(self):
        net, nodes = make_net()
        nodes["a"].set_timer(5, "wake")
        net.crash("a")
        net.run_until(10)
        assert nodes["a"].timers == []

    def test_timer_lost_while_crashed_stays_lost_after_recovery(self):
        """A timer that fires during a crash is dropped, not deferred."""
        net, nodes = make_net()
        nodes["a"].set_timer(5, "wake")
        net.crash("a")
        net.run_until(10)  # firing time passes while crashed
        net.recover("a")
        net.run_to_quiescence()
        assert nodes["a"].timers == []

    def test_timer_fires_after_crash_recover_cycle(self):
        """Recovery before the firing time keeps the timer armed."""
        net, nodes = make_net()
        nodes["a"].set_timer(8, "wake")
        net.crash("a")
        net.run_until(3)
        net.recover("a")
        net.run_until(10)
        assert nodes["a"].timers == ["wake"]

    def test_cancel_timer(self):
        net, nodes = make_net()
        handle = nodes["a"].set_timer(5, "wake")
        net.cancel_timer(handle)
        net.run_until(10)
        assert nodes["a"].timers == []


class TestFifoUnderJitter:
    def test_per_channel_fifo_with_delay_fault(self):
        """Latency jitter and spikes never reorder a channel."""
        from repro.faults.models import DelayFault

        net, nodes = make_net(seed=11)
        net.install_fault(DelayFault(jitter=6.0, spike_prob=0.5, spike=25.0))
        for i in range(12):
            nodes["a"].send("b", ("m", i))
            nodes["b"].send("a", ("r", i))
        net.run_to_quiescence()
        assert [m for _, m in nodes["b"].received] == [
            ("m", i) for i in range(12)
        ]
        assert [m for _, m in nodes["a"].received] == [
            ("r", i) for i in range(12)
        ]


class TestEventLogBounds:
    def test_unbounded_by_default(self):
        net, nodes = make_net()
        for i in range(20):
            nodes["a"].send("b", i)
        net.run_to_quiescence()
        assert net.log.dropped == 0
        assert len(net.log) >= 40  # sends + delivers

    def test_bounded_log_trims_oldest(self):
        from repro.net import Network

        net = Network(seed=0, log_limit=10)
        nodes = {p: net.add_node(Echo(p)) for p in ["a", "b"]}
        net.start()
        for i in range(200):
            nodes["a"].send("b", i)
        net.run_to_quiescence()
        assert len(net.log) <= 20  # trims in chunks, never above 2x limit
        assert net.log.dropped > 0
        # The tail is the most recent history.
        times = [t for t, _, _ in net.log]
        assert times == sorted(times)


class TestTopology:
    def test_duplicate_pid_rejected(self):
        net = Network()
        net.add_node(Echo("a"))
        with pytest.raises(ValueError):
            net.add_node(Echo("a"))

    def test_component_of_crashed_is_empty(self):
        net, nodes = make_net()
        net.crash("a")
        assert net.component("a") == frozenset()
