"""Unit tests for the discrete-event queue."""

import pytest

from repro.net.events import EventQueue


class TestScheduling:
    def test_fires_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(3, lambda: fired.append("c"))
        q.schedule(1, lambda: fired.append("a"))
        q.schedule(2, lambda: fired.append("b"))
        q.run_until(10)
        assert fired == ["a", "b", "c"]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        fired = []
        for tag in "abc":
            q.schedule(1, lambda t=tag: fired.append(t))
        q.run_until(1)
        assert fired == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_now_advances(self):
        q = EventQueue()
        q.schedule(5, lambda: None)
        q.run_until(7)
        assert q.now == 7

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []

        def first():
            fired.append(1)
            q.schedule(1, lambda: fired.append(2))

        q.schedule(1, first)
        q.run_until(5)
        assert fired == [1, 2]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        handle = q.schedule(1, lambda: fired.append("x"))
        q.cancel(handle)
        q.run_until(5)
        assert fired == []

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        h = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        q.cancel(h)
        assert len(q) == 1


class TestQuiescence:
    def test_run_to_quiescence_counts(self):
        q = EventQueue()
        for _ in range(4):
            q.schedule(1, lambda: None)
        status = q.run_to_quiescence()
        assert status.fired == 4
        assert status.quiescent
        assert status.reason == "quiescent"
        assert bool(status)

    def test_respects_max_time(self):
        q = EventQueue()
        fired = []
        q.schedule(1, lambda: fired.append(1))
        q.schedule(100, lambda: fired.append(2))
        status = q.run_to_quiescence(max_time=10)
        assert fired == [1]
        # The far-future event is still queued.
        assert len(q) == 1
        assert not status.quiescent
        assert status.reason == "max_time"

    def test_respects_max_events(self):
        q = EventQueue()

        def reschedule():
            q.schedule(1, reschedule)

        q.schedule(1, reschedule)
        status = q.run_to_quiescence(max_events=50)
        assert status.fired == 50
        assert not status.quiescent
        assert status.reason == "max_events"
        assert not bool(status)

    def test_exact_budget_still_quiescent(self):
        """Draining on the last allowed event is quiescence, not truncation."""
        q = EventQueue()
        for _ in range(5):
            q.schedule(1, lambda: None)
        status = q.run_to_quiescence(max_events=5)
        assert status.fired == 5
        assert status.quiescent

    def test_budget_with_only_cancelled_left_is_quiescent(self):
        q = EventQueue()
        q.schedule(1, lambda: None)
        handle = q.schedule(2, lambda: None)
        q.cancel(handle)
        status = q.run_to_quiescence(max_events=1)
        assert status.quiescent
