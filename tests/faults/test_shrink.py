"""Tests for ddmin plan shrinking and repro packaging."""

import pytest

from repro.faults.harness import find_and_shrink, run_chaos
from repro.faults.nemesis import FaultOp, NemesisPlan
from repro.faults.shrink import ReproCase, shrink_plan

PROCS = ["p1", "p2", "p3", "p4", "p5"]


def noise_plan(n):
    return [FaultOp(float(i + 1), "crash", ("px%d" % i,)) for i in range(n)]


class TestShrinkPlan:
    def test_single_culprit_is_isolated(self):
        culprit = FaultOp(50.0, "heal")
        plan = NemesisPlan(noise_plan(20) + [culprit])

        def fails(candidate):
            return culprit in candidate.ops

        minimal, probes = shrink_plan(plan, fails)
        assert minimal.ops == (culprit,)
        assert probes >= 1

    def test_interacting_pair_is_kept_together(self):
        a = FaultOp(10.0, "crash", ("p1",))
        b = FaultOp(20.0, "recover", ("p1",))
        plan = NemesisPlan(noise_plan(14) + [a, b])

        def fails(candidate):
            return a in candidate.ops and b in candidate.ops

        minimal, _ = shrink_plan(plan, fails)
        assert set(minimal.ops) == {a, b}

    def test_result_is_one_minimal(self):
        ops = noise_plan(9)
        keep = {ops[1], ops[4], ops[7]}
        plan = NemesisPlan(ops)

        def fails(candidate):
            return keep <= set(candidate.ops)

        minimal, _ = shrink_plan(plan, fails)
        assert set(minimal.ops) == keep
        for i in range(len(minimal)):
            assert not fails(minimal.without([i]))

    def test_rejects_passing_plan(self):
        plan = NemesisPlan(noise_plan(3))
        with pytest.raises(ValueError):
            shrink_plan(plan, lambda candidate: False)

    def test_probe_budget_caps_oracle_calls(self):
        plan = NemesisPlan(noise_plan(30))
        calls = [0]

        def fails(candidate):
            calls[0] += 1
            return len(candidate) == 30 or len(candidate) <= 1

        shrink_plan(plan, fails, max_probes=5)
        assert calls[0] <= 5

    def test_oracle_results_are_cached(self):
        plan = NemesisPlan(noise_plan(8))
        seen = []

        def fails(candidate):
            assert candidate.ops not in seen
            seen.append(candidate.ops)
            return True  # every subset "fails" -> lots of repeat shapes

        shrink_plan(plan, fails)


class TestReproCase:
    def make_case(self):
        plan = NemesisPlan([FaultOp(10.0, "crash", ("p1",))])
        return ReproCase(
            seed=7, processes=tuple(PROCS), plan=plan, probes=3,
            extra_args={"broken": True},
        )

    def test_command_replays_plan_json(self):
        cmd = self.make_case().command()
        assert cmd.startswith("python -m repro chaos")
        assert "--seed 7" in cmd
        assert "--processes 5" in cmd
        assert "--plan-json" in cmd and "crash" in cmd
        assert "--broken" in cmd

    def test_describe_lists_ops_and_replay(self):
        text = self.make_case().describe()
        assert "minimal plan (1 ops, 3 probes)" in text
        assert "replay:" in text


class TestEndToEndShrink:
    def test_broken_stack_shrinks_to_replayable_repro(self):
        from repro.dvs.ablation import NoMajorityDvsLayer
        from repro.faults.nemesis import partition_churn

        plan = partition_churn(PROCS, seed=0, start=10.0, duration=90.0)
        result = run_chaos(
            PROCS, seed=0, plan=plan, dvs_factory=NoMajorityDvsLayer
        )
        assert not result.ok
        repro_case = find_and_shrink(
            result, max_probes=60, dvs_factory=NoMajorityDvsLayer
        )
        assert len(repro_case.plan) < len(plan)
        assert repro_case.violation is not None
        # The emitted (seed, plan) pair really does replay the violation.
        replay = run_chaos(
            PROCS, seed=repro_case.seed, plan=repro_case.plan,
            dvs_factory=NoMajorityDvsLayer,
        )
        assert not replay.ok

    def test_shrink_refuses_healthy_run(self):
        result = run_chaos(PROCS, seed=1, plan=NemesisPlan(()), duration=50.0)
        assert result.ok
        with pytest.raises(ValueError):
            find_and_shrink(result)
