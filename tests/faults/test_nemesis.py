"""Tests for nemesis plans, generators and the scheduler."""

import pytest

from repro.faults.nemesis import (
    FaultOp,
    Nemesis,
    NemesisPlan,
    bridge_topology,
    compose,
    crash_recovery_storm,
    flaky_link_windows,
    partition_churn,
    plan_from_scenario,
)
from repro.net import Network, Node

PROCS = ["p1", "p2", "p3", "p4"]


class TestFaultOp:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultOp(1.0, "meteor")

    def test_freezes_args(self):
        op = FaultOp(1.0, "partition", ([["p1"], ["p2"]],))
        assert op.args == ((("p1",), ("p2",)),)

    def test_window_end(self):
        op = FaultOp(5.0, "drop", (None, 0.5, 10.0))
        assert op.end == 15.0
        assert FaultOp(5.0, "heal").end == 5.0


class TestNemesisPlan:
    def test_sorted_by_time(self):
        plan = NemesisPlan(
            [FaultOp(9.0, "heal"), FaultOp(1.0, "crash", ("p1",))]
        )
        assert [op.at for op in plan] == [1.0, 9.0]

    def test_horizon_covers_windows(self):
        plan = NemesisPlan([FaultOp(5.0, "drop", (None, 0.5, 50.0))])
        assert plan.horizon == 55.0

    def test_subset_and_without(self):
        plan = NemesisPlan(
            [FaultOp(float(i), "crash", ("p1",)) for i in range(4)]
        )
        assert [op.at for op in plan.subset([0, 2])] == [0.0, 2.0]
        assert [op.at for op in plan.without([0, 2])] == [1.0, 3.0]

    def test_json_round_trip(self):
        plan = compose(
            crash_recovery_storm(PROCS, seed=1),
            flaky_link_windows(PROCS, seed=2),
            partition_churn(PROCS, seed=3),
            bridge_topology(PROCS[:2], PROCS[2:], PROCS[0]),
        )
        assert NemesisPlan.from_json(plan.to_json()) == plan

    def test_mixed_args_sort_without_comparison_error(self):
        # drop with links=None and with a tuple at the same time & kind.
        plan = NemesisPlan([
            FaultOp(1.0, "drop", (None, 0.5, 5.0)),
            FaultOp(1.0, "drop", ((("p1", "p2"),), 0.5, 5.0)),
        ])
        assert len(plan) == 2


class TestGenerators:
    def test_deterministic_in_seed(self):
        for builder in (crash_recovery_storm, partition_churn,
                        flaky_link_windows):
            assert builder(PROCS, seed=5) == builder(PROCS, seed=5)
            assert builder(PROCS, seed=5) != builder(PROCS, seed=6)

    def test_storm_pairs_crashes_with_recoveries(self):
        plan = crash_recovery_storm(PROCS, seed=0, crashes=10)
        crashes = [op for op in plan if op.kind == "crash"]
        recoveries = [op for op in plan if op.kind == "recover"]
        assert len(crashes) == len(recoveries) > 0

    def test_storm_leaves_a_spare(self):
        plan = crash_recovery_storm(PROCS, seed=1, crashes=30, spare=1,
                                    min_down=100.0, max_down=200.0)
        down = set()
        for op in sorted(plan, key=lambda op: op.at):
            if op.kind == "crash":
                down.add(op.args[0])
                assert len(down) <= len(PROCS) - 1
            elif op.kind == "recover":
                down.discard(op.args[0])

    def test_churn_heals_at_end(self):
        plan = partition_churn(PROCS, seed=2)
        assert plan.ops[-1].kind == "heal"

    def test_bridge_blocks_cross_links_only(self):
        plan = bridge_topology(["p1", "p2"], ["p3", "p4"], "p1")
        (op,) = plan.ops
        pairs = set(op.args[0])
        assert ("p2", "p3") in pairs and ("p3", "p2") in pairs
        assert not any("p1" in pair for pair in pairs)

    def test_plan_from_scenario(self):
        scenario = [
            [frozenset(PROCS)],
            [frozenset(PROCS[:2]), frozenset(PROCS[2:])],
            [frozenset(PROCS)],
        ]
        plan = plan_from_scenario(scenario, period=10.0)
        assert [op.kind for op in plan] == ["heal", "partition", "heal"]
        assert [op.at for op in plan] == [0.0, 10.0, 20.0]


class Quiet(Node):
    pass


class TestScheduler:
    def test_ops_fire_at_their_times(self):
        net = Network(seed=0)
        for pid in PROCS:
            net.add_node(Quiet(pid))
        plan = NemesisPlan([
            FaultOp(5.0, "crash", ("p1",)),
            FaultOp(12.0, "recover", ("p1",)),
            FaultOp(20.0, "partition", ((("p1", "p2"), ("p3", "p4")),)),
            FaultOp(30.0, "heal"),
        ])
        nemesis = Nemesis(plan).arm(net)
        net.start()
        net.run_until(6)
        assert not net.alive("p1")
        net.run_until(13)
        assert net.alive("p1")
        net.run_until(21)
        assert net.component("p1") == frozenset({"p1", "p2"})
        net.run_until(31)
        assert net.component("p1") == frozenset(PROCS)
        assert len(nemesis.applied) == 4

    def test_windows_install_and_remove_faults(self):
        net = Network(seed=0)
        for pid in PROCS:
            net.add_node(Quiet(pid))
        plan = NemesisPlan([FaultOp(5.0, "drop", (None, 1.0, 10.0))])
        Nemesis(plan).arm(net)
        net.start()
        net.run_until(6)
        assert len(net.faults) == 1
        net.run_until(16)
        assert net.faults == []
        kinds = [k for _, k, _ in net.log]
        assert "fault_on" in kinds and "fault_off" in kinds
        assert "nemesis" in kinds
