"""Unit tests for the link-level fault models."""

from repro.faults.models import (
    DelayFault,
    DropFault,
    DuplicateFault,
    OneWayBlock,
)
from repro.net import Network, Node


class Sink(Node):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((src, msg))


def make_net(seed=0, pids="ab"):
    net = Network(seed=seed)
    nodes = {p: net.add_node(Sink(p)) for p in pids}
    net.start()
    return net, nodes


class TestDropFault:
    def test_certain_drop_loses_everything(self):
        net, nodes = make_net()
        net.install_fault(DropFault(1.0))
        for i in range(5):
            nodes["a"].send("b", i)
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert sum(1 for _, k, _ in net.log if k == "fault_drop") == 5

    def test_partial_drop_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            net, nodes = make_net(seed=7)
            net.install_fault(DropFault(0.5))
            for i in range(40):
                nodes["a"].send("b", i)
            net.run_to_quiescence()
            outcomes.append([m for _, m in nodes["b"].received])
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 40

    def test_scoped_to_links(self):
        net, nodes = make_net(pids="abc")
        net.install_fault(DropFault(1.0, links=[("a", "b")]))
        nodes["a"].send("b", "lost")
        nodes["a"].send("c", "kept")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert nodes["c"].received == [("a", "kept")]

    def test_removal_restores_the_link(self):
        net, nodes = make_net()
        fault = net.install_fault(DropFault(1.0))
        nodes["a"].send("b", "lost")
        net.run_to_quiescence()
        net.remove_fault(fault)
        nodes["a"].send("b", "kept")
        net.run_to_quiescence()
        assert nodes["b"].received == [("a", "kept")]


class TestDuplicateFault:
    def test_duplicates_arrive_in_order(self):
        net, nodes = make_net(seed=3)
        net.install_fault(DuplicateFault(1.0, spread=4.0))
        for i in range(6):
            nodes["a"].send("b", i)
        net.run_to_quiescence()
        payloads = [m for _, m in nodes["b"].received]
        assert len(payloads) == 12
        # FIFO per channel: copies never overtake later messages' copies.
        assert payloads == sorted(payloads)


class TestDelayFault:
    def test_jitter_preserves_channel_fifo(self):
        net, nodes = make_net(seed=5)
        net.install_fault(DelayFault(jitter=10.0, spike_prob=0.3, spike=30.0))
        for i in range(10):
            nodes["a"].send("b", i)
        net.run_to_quiescence()
        assert [m for _, m in nodes["b"].received] == list(range(10))

    def test_spikes_slow_down_delivery(self):
        quiet_net, quiet_nodes = make_net(seed=9)
        quiet_nodes["a"].send("b", "x")
        quiet_net.run_to_quiescence()
        slow_net, slow_nodes = make_net(seed=9)
        slow_net.install_fault(DelayFault(jitter=0.0, spike_prob=1.0,
                                          spike=50.0))
        slow_nodes["a"].send("b", "x")
        slow_net.run_to_quiescence()
        assert slow_net.queue.now > quiet_net.queue.now


class TestOneWayBlock:
    def test_asymmetric(self):
        net, nodes = make_net()
        net.install_fault(OneWayBlock([("a", "b")]))
        nodes["a"].send("b", "blocked")
        nodes["b"].send("a", "through")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert nodes["a"].received == [("b", "through")]

    def test_blocks_in_flight_messages(self):
        """Like partitions, the block is evaluated at delivery time."""
        net, nodes = make_net()
        nodes["a"].send("b", "late")
        net.install_fault(OneWayBlock([("a", "b")]))
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert any(k == "drop" for _, k, _ in net.log)

    def test_rejects_wildcard(self):
        import pytest

        with pytest.raises(ValueError):
            OneWayBlock(None)
