"""Tests for the online safety monitor."""

import pytest

from repro.core import make_view
from repro.faults.harness import run_chaos
from repro.faults.monitor import SafetyMonitor, SafetyViolation
from repro.faults.nemesis import NemesisPlan
from repro.gcs.recorder import ActionLog

PROCS = ["p1", "p2", "p3", "p4", "p5"]


def make_monitor(members="abc", fail_fast=True):
    v0 = make_view(0, members)
    log = ActionLog()
    monitor = SafetyMonitor(v0, fail_fast=fail_fast).attach(log)
    return monitor, log, v0


class TestDvsChecks:
    def test_intersecting_views_pass(self):
        monitor, log, _ = make_monitor("abc")
        log.record("dvs_newview", make_view(1, "ab"), "a")
        log.record("dvs_newview", make_view(2, "bc"), "b")
        assert monitor.ok

    def test_disjoint_unseparated_views_fail(self):
        monitor, log, _ = make_monitor("abcd")
        log.record("dvs_newview", make_view(1, "ab"), "a")
        with pytest.raises(SafetyViolation) as err:
            log.record("dvs_newview", make_view(2, "cd"), "c")
        assert err.value.prop == "dvs-4.1-intersection"
        assert err.value.actions  # carries the event log

    def test_total_registration_separates(self):
        monitor, log, _ = make_monitor("abcd")
        log.record("dvs_newview", make_view(1, "ab"), "a")
        log.record("dvs_newview", make_view(2, "abcd"), "a")
        log.record("dvs_newview", make_view(2, "abcd"), "b")
        log.record("dvs_newview", make_view(2, "abcd"), "c")
        log.record("dvs_newview", make_view(2, "abcd"), "d")
        for p in "abcd":
            log.record("dvs_register", p)
        # v1={a,b} and v3={c,d} are disjoint but separated by registered v2.
        log.record("dvs_newview", make_view(3, "cd"), "c")
        assert monitor.ok
        assert len(monitor.totally_registered) == 2

    def test_out_of_order_views_fail(self):
        monitor, log, _ = make_monitor("abc")
        log.record("dvs_newview", make_view(5, "ab"), "a")
        with pytest.raises(SafetyViolation) as err:
            log.record("dvs_newview", make_view(1, "ab"), "a")
        assert err.value.prop == "dvs-view-order"

    def test_non_member_view_fails(self):
        monitor, log, _ = make_monitor("abc")
        with pytest.raises(SafetyViolation) as err:
            log.record("dvs_newview", make_view(1, "bc"), "a")
        assert err.value.prop == "dvs-membership"

    def test_fail_slow_accumulates(self):
        monitor, log, _ = make_monitor("abcd", fail_fast=False)
        log.record("dvs_newview", make_view(1, "ab"), "a")
        log.record("dvs_newview", make_view(2, "cd"), "c")
        log.record("dvs_newview", make_view(3, "cd"), "c")
        assert not monitor.ok
        assert len(monitor.violations) >= 1


class TestToChecks:
    def test_consistent_prefixes_pass(self):
        monitor, log, _ = make_monitor("abc")
        log.record("bcast", "m1", "a")
        log.record("bcast", "m2", "b")
        log.record("brcv", "m1", "a", "a")
        log.record("brcv", "m1", "a", "b")
        log.record("brcv", "m2", "b", "a")
        assert monitor.ok

    def test_order_disagreement_fails(self):
        monitor, log, _ = make_monitor("abc")
        log.record("bcast", "m1", "a")
        log.record("bcast", "m2", "b")
        log.record("brcv", "m1", "a", "a")
        log.record("brcv", "m2", "b", "a")
        log.record("brcv", "m1", "a", "b")
        with pytest.raises(SafetyViolation) as err:
            log.record("brcv", "m2", "b", "c")  # c skips m1
        assert err.value.prop == "to-prefix-consistency"

    def test_unbroadcast_delivery_fails(self):
        monitor, log, _ = make_monitor("abc")
        with pytest.raises(SafetyViolation) as err:
            log.record("brcv", "ghost", "a", "b")
        assert err.value.prop == "to-integrity"

    def test_duplicate_delivery_fails(self):
        monitor, log, _ = make_monitor("abc")
        log.record("bcast", "m1", "a")
        log.record("brcv", "m1", "a", "b")
        with pytest.raises(SafetyViolation) as err:
            log.record("brcv", "m1", "a", "b")
        assert err.value.prop == "to-no-duplication"


class TestMonitoredChaosRuns:
    def test_healthy_stack_survives_partition_churn(self):
        from repro.faults.nemesis import partition_churn

        plan = partition_churn(PROCS, seed=4, start=10.0, duration=90.0)
        result = run_chaos(PROCS, seed=4, plan=plan)
        assert result.ok
        assert result.stats["violations"] == 0
        assert result.stats["attempted_views"] > 1

    def test_broken_stack_is_caught_online(self):
        from repro.dvs.ablation import NoMajorityDvsLayer
        from repro.faults.nemesis import partition_churn

        plan = partition_churn(PROCS, seed=0, start=10.0, duration=120.0)
        result = run_chaos(
            PROCS, seed=0, plan=plan, dvs_factory=NoMajorityDvsLayer
        )
        assert not result.ok
        assert result.violation.prop == "dvs-4.1-intersection"
        # Fail-fast: the run stopped at the violation, well before the
        # plan plus settle time would have elapsed.
        assert result.violation.net_log

    def test_same_seed_same_digest(self):
        from repro.faults.nemesis import crash_recovery_storm

        plan = crash_recovery_storm(PROCS, seed=9, start=5.0, duration=60.0)
        first = run_chaos(PROCS, seed=9, plan=plan, duration=100.0)
        second = run_chaos(PROCS, seed=9, plan=plan, duration=100.0)
        assert first.digest == second.digest
        assert first.ok and second.ok

    def test_different_seed_different_digest(self):
        plan = NemesisPlan([(10.0, "crash", ("p1",))])
        a = run_chaos(PROCS, seed=1, plan=plan, duration=60.0)
        b = run_chaos(PROCS, seed=2, plan=plan, duration=60.0)
        assert a.digest != b.digest

    def test_monitor_forces_full_logging(self):
        plan = NemesisPlan([(10.0, "crash", ("p1",))])
        result = run_chaos(
            PROCS, seed=0, plan=plan, duration=60.0,
            log_limit=5, keep_cluster=True,
        )
        assert result.cluster.net.log.limit is None
        assert result.cluster.net.log.dropped == 0

    def test_unmonitored_run_respects_log_limit(self):
        plan = NemesisPlan([(10.0, "crash", ("p1",))])
        result = run_chaos(
            PROCS, seed=0, plan=plan, duration=60.0,
            monitor=False, log_limit=50, keep_cluster=True,
        )
        assert result.cluster.net.log.limit == 50
        assert len(result.cluster.net.log) <= 100
