"""Property tests: DVS/TO safety holds under arbitrary nemesis plans.

Every generated fault schedule (crashes, partitions, flaky windows,
one-way blocks...) is played against the healthy full stack with the
online monitor armed.  The monitor raising would fail the test -- i.e.
Invariant 4.1 and TO prefix-consistency must survive whatever the
nemesis does.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking.strategies import nemesis_plans
from repro.faults.harness import run_chaos
from repro.faults.nemesis import NemesisPlan

PROCS = ["p1", "p2", "p3"]

compact = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.filter_too_much],
)


class TestChaosSafety:
    @compact
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        plan=nemesis_plans(PROCS, max_ops=5, horizon=60.0, max_duration=20.0),
    )
    def test_monitor_stays_quiet_on_healthy_stack(self, seed, plan):
        result = run_chaos(
            PROCS, seed=seed, plan=plan,
            duration=min(plan.horizon + 30.0, 120.0),
            settle_time=250.0,
        )
        assert result.ok, result.violation.summary()
        assert result.stats["violations"] == 0

    @compact
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        plan=nemesis_plans(PROCS, max_ops=4, horizon=50.0, max_duration=15.0),
    )
    def test_runs_replay_identically(self, seed, plan):
        first = run_chaos(PROCS, seed=seed, plan=plan, duration=80.0)
        second = run_chaos(PROCS, seed=seed, plan=plan, duration=80.0)
        assert first.digest == second.digest
        assert first.stats == second.stats


class TestPlanStrategies:
    @settings(max_examples=40, deadline=None)
    @given(plan=nemesis_plans(PROCS))
    def test_generated_plans_serialize(self, plan):
        assert NemesisPlan.from_json(plan.to_json()) == plan
        assert all(op.at <= op.end for op in plan)
        assert plan.horizon >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        plan=nemesis_plans(PROCS),
        factor=st.floats(min_value=0.001, max_value=10.0,
                         allow_nan=False),
    )
    def test_scaled_plans_keep_shape(self, plan, factor):
        # scaled() converts sim time units to wall-clock seconds for
        # --live runs: times and window durations stretch, everything
        # else (kinds, op count, targets) is untouched.
        scaled = plan.scaled(factor)
        assert len(scaled) == len(plan)
        assert [op.kind for op in scaled] == [op.kind for op in plan]
        for op, orig in zip(scaled.ops, plan.ops):
            assert op.at == orig.at * factor
            if op.kind in ("drop", "duplicate", "delay", "oneway"):
                assert op.args[:-1] == orig.args[:-1]
                assert op.args[-1] == orig.args[-1] * factor
            else:
                assert op.args == orig.args
        # A scaled plan is still serializable and replayable.
        assert NemesisPlan.from_json(scaled.to_json()) == scaled

    @settings(max_examples=40, deadline=None)
    @given(plan=nemesis_plans(PROCS))
    def test_scaling_by_one_is_identity(self, plan):
        assert plan.scaled(1.0) == plan

    def test_hostile_plan_json_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown fault kind"):
            NemesisPlan.from_json('[[0.0, "exec", ["rm -rf /"]]]')
