"""Property-based tests over randomized IOA executions.

Hypothesis drives the *adversary* (seeds, pool shapes, scheduler
weights); the checked properties are the paper's safety guarantees, which
must hold for every generated execution.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checking import (
    build_closed_dvs_impl,
    build_closed_to_impl,
    check_dvs_trace_properties,
    check_to_trace_properties,
    random_view_pool,
)
from repro.core import make_view
from repro.dvs import dvs_impl_invariants, dvs_refinement_checker
from repro.ioa import run_random
from repro.to import to_impl_invariants

SLOW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestDvsImplProperties:
    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        pool_seed=st.integers(min_value=0, max_value=10**6),
        min_size=st.integers(min_value=1, max_value=3),
        create_weight=st.floats(min_value=0.05, max_value=0.6),
    )
    def test_invariants_and_refinement(
        self, seed, pool_seed, min_size, create_weight
    ):
        universe = ["p1", "p2", "p3", "p4"]
        v0 = make_view(0, universe[:3])
        pool = random_view_pool(universe, 4, seed=pool_seed,
                                min_size=min_size)
        system, procs = build_closed_dvs_impl(
            v0, universe, view_pool=pool, budget=1
        )
        ex = run_random(
            system,
            700,
            seed=seed,
            weights={
                "vs_createview": create_weight,
                "dvs_register": 2.0,
                "dvs_garbage_collect": 2.0,
            },
        )
        dvs_impl_invariants(procs).check_execution(ex)
        dvs_refinement_checker(procs, v0, procs).check_execution(ex)
        check_dvs_trace_properties(ex.trace(), v0)


class TestToImplProperties:
    @SLOW
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        pool_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_invariants_and_total_order(self, seed, pool_seed):
        universe = ["p1", "p2", "p3"]
        v0 = make_view(0, universe)
        pool = random_view_pool(universe, 3, seed=pool_seed, min_size=2)
        system, procs = build_closed_to_impl(
            v0, universe, view_pool=pool, budget=2
        )
        ex = run_random(
            system,
            1800,
            seed=seed,
            weights={"dvs_createview": 0.08, "bcast": 1.0},
        )
        to_impl_invariants(procs).check_execution(ex)
        check_to_trace_properties(ex.trace())
