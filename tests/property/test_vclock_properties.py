"""Property-based tests (hypothesis) for the CB vector-clock algebra.

The laws documented in :mod:`repro.cb.clocks`: join is a
join-semilattice operation with identity ``()``, leq/compare form a
partial order refined three ways, restrict commutes with join, and
drain releases hold-back queues to an arrival-order-independent
fixpoint that respects the BSS delivery condition.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.cb.clocks import (
    advance,
    compare,
    deliverable,
    drain,
    entry,
    join,
    leq,
    normalize,
    put,
    restrict,
    tick,
)

PIDS = ["p1", "p2", "p3", "p4", "p5"]

clocks = st.dictionaries(
    st.sampled_from(PIDS),
    st.integers(min_value=0, max_value=6),
    max_size=5,
).map(normalize)
pids = st.sampled_from(PIDS)
memberships = st.frozensets(st.sampled_from(PIDS))


class TestCanonicalForm:
    @given(
        st.lists(
            st.tuples(pids, st.integers(min_value=-3, max_value=6)),
            max_size=10,
        )
    )
    def test_normalize_is_canonical_and_idempotent(self, pairs):
        clock = normalize(pairs)
        assert clock == tuple(sorted(clock))
        assert all(count > 0 for _, count in clock)
        assert normalize(clock) == clock

    @given(clocks, pids, st.integers(min_value=0, max_value=9))
    def test_put_then_entry_roundtrips(self, clock, pid, count):
        assert entry(put(clock, pid, count), pid) == count

    @given(clocks, pids)
    def test_tick_bumps_exactly_one_entry(self, clock, pid):
        bumped = tick(clock, pid)
        assert entry(bumped, pid) == entry(clock, pid) + 1
        for other in PIDS:
            if other != pid:
                assert entry(bumped, other) == entry(clock, other)


class TestJoinSemilattice:
    @given(clocks)
    def test_idempotent(self, a):
        assert join(a, a) == a

    @given(clocks, clocks)
    def test_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @given(clocks, clocks, clocks)
    def test_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @given(clocks)
    def test_empty_clock_is_identity(self, a):
        assert join(a, ()) == a
        assert join((), a) == a

    @given(clocks, clocks)
    def test_join_is_least_upper_bound(self, a, b):
        top = join(a, b)
        assert leq(a, top) and leq(b, top)
        # Least: any common upper bound dominates the join.
        for pid, count in top:
            assert count == max(entry(a, pid), entry(b, pid))


class TestPartialOrder:
    @given(clocks)
    def test_reflexive(self, a):
        assert leq(a, a)

    @given(clocks, clocks)
    def test_antisymmetric(self, a, b):
        if leq(a, b) and leq(b, a):
            assert a == b

    @given(clocks, clocks, clocks)
    def test_transitive(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)

    @given(clocks, clocks)
    def test_compare_refines_leq(self, a, b):
        verdict = compare(a, b)
        if verdict == 0:
            assert a == b
        elif verdict == -1:
            assert leq(a, b) and not leq(b, a)
        elif verdict == 1:
            assert leq(b, a) and not leq(a, b)
        else:
            assert not leq(a, b) and not leq(b, a)


class TestRestrict:
    @given(clocks, memberships)
    def test_restrict_is_a_lower_bound_and_idempotent(self, a, members):
        cut = restrict(a, members)
        assert leq(cut, a)
        assert restrict(cut, members) == cut
        assert all(pid in members for pid, _ in cut)

    @given(clocks, clocks, memberships)
    def test_restrict_commutes_with_join(self, a, b, members):
        assert restrict(join(a, b), members) == join(
            restrict(a, members), restrict(b, members)
        )


def _causal_history(seed, senders=3, casts=8):
    """A random but causally consistent multicast history: each cast is
    stamped the way a real sender would (deliver some prefix of the
    others' casts, then tick yourself)."""
    rng = random.Random(seed)
    procs = PIDS[:senders]
    delivered = {p: () for p in procs}
    sent = {p: 0 for p in procs}
    history = []  # (origin, clock) in send order
    for _ in range(casts):
        origin = rng.choice(procs)
        # The sender first delivers a random set of deliverable casts.
        progress = True
        while progress:
            progress = False
            for index, (who, clock) in enumerate(history):
                if rng.random() < 0.5 and deliverable(
                    clock, delivered[origin], who
                ):
                    delivered[origin] = advance(delivered[origin], who)
                    progress = True
        sent[origin] += 1
        stamp = put(delivered[origin], origin, sent[origin])
        history.append((origin, stamp))
    return history


class TestDrain:
    @given(st.integers(min_value=0, max_value=500), st.randoms())
    def test_fixpoint_independent_of_arrival_order(self, seed, rng):
        history = _causal_history(seed)
        shuffled = list(history)
        rng.shuffle(shuffled)
        a_released, a_rest, a_clock = drain(history, ())
        b_released, b_rest, b_clock = drain(shuffled, ())
        # A complete history drains fully from any interleaving, to the
        # same final delivered clock.
        assert a_rest == () and b_rest == ()
        assert a_clock == b_clock
        assert len(a_released) == len(history)

    @given(st.integers(min_value=0, max_value=500))
    def test_release_order_respects_bss(self, seed):
        history = _causal_history(seed)
        released, remaining, _ = drain(history, ())
        delivered = ()
        for index in released:
            origin, clock = history[index]
            assert deliverable(clock, delivered, origin)
            delivered = advance(delivered, origin)

    @given(st.integers(min_value=0, max_value=500), st.randoms())
    def test_withholding_a_cast_blocks_its_dependents_only(
        self, seed, rng
    ):
        history = _causal_history(seed)
        if not history:
            return
        drop = rng.randrange(len(history))
        queue = [
            pair for i, pair in enumerate(history) if i != drop
        ]
        released, remaining, delivered = drain(queue, ())
        blocked_origin, blocked_clock = history[drop]
        for index in remaining:
            origin, clock = queue[index]
            # Whatever stays held back is genuinely undeliverable.
            assert not deliverable(clock, delivered, origin)
