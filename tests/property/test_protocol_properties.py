"""Property-based tests over protocol-level structures and executions."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import random_churn
from repro.core import make_view
from repro.core.viewids import ViewId
from repro.membership import DynamicVotingTracker, StaticMajorityTracker
from repro.to.summaries import Label, Summary, chosenrep, fullorder, reps

PROCS = ["p1", "p2", "p3", "p4", "p5"]

labels = st.builds(
    Label,
    st.builds(ViewId, st.integers(min_value=0, max_value=4),
              st.sampled_from(["", "a"])),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(PROCS),
)
payloads = st.integers(min_value=0, max_value=9)
summaries = st.builds(
    Summary,
    st.frozensets(st.tuples(labels, payloads), max_size=6),
    st.lists(labels, max_size=5, unique=True).map(tuple),
    st.integers(min_value=1, max_value=6),
    st.builds(ViewId, st.integers(min_value=0, max_value=4),
              st.sampled_from(["", "a"])),
)
gotstates = st.dictionaries(
    st.sampled_from(PROCS), summaries, min_size=1, max_size=4
)


class TestFullorderLaws:
    @given(gotstates)
    def test_no_duplicates(self, gotstate):
        order = fullorder(gotstate)
        assert len(order) == len(set(order))

    @given(gotstates)
    def test_covers_all_known_labels(self, gotstate):
        order = set(fullorder(gotstate))
        known = {
            label
            for summary in gotstate.values()
            for label, _ in summary.con
        }
        assert known <= order

    @given(gotstates)
    def test_rep_order_is_prefix(self, gotstate):
        rep = chosenrep(gotstate)
        order = fullorder(gotstate)
        rep_ord = list(gotstate[rep].ord)
        assert order[: len(rep_ord)] == rep_ord

    @given(gotstates)
    def test_chosenrep_in_reps_and_deterministic(self, gotstate):
        assert chosenrep(gotstate) in reps(gotstate)
        assert chosenrep(gotstate) == chosenrep(dict(gotstate))

    @given(gotstates)
    def test_remainder_is_label_sorted(self, gotstate):
        rep_len = len(gotstate[chosenrep(gotstate)].ord)
        tail = fullorder(gotstate)[rep_len:]
        assert tail == sorted(tail)


class TestTrackerSafetyProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10000),
        partition_prob=st.floats(min_value=0.1, max_value=0.9),
        register_lag=st.integers(min_value=0, max_value=3),
        failure_prob=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_dynamic_voting_never_splits(
        self, seed, partition_prob, register_lag, failure_prob
    ):
        tracker = DynamicVotingTracker(
            make_view(0, PROCS),
            register_lag=register_lag,
            failure_prob=failure_prob,
            seed=seed,
        )
        for config in random_churn(
            PROCS, 120, seed=seed, partition_prob=partition_prob
        ):
            tracker.observe(config)
        assert tracker.disjoint_primary_incidents() == 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10000))
    def test_static_majority_never_splits(self, seed):
        tracker = StaticMajorityTracker(make_view(0, PROCS))
        for config in random_churn(PROCS, 120, seed=seed,
                                   partition_prob=0.7):
            tracker.observe(config)
        assert tracker.disjoint_primary_incidents() == 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10000))
    def test_both_rules_safe_under_drift(self, seed):
        """Under drift both rules stay safe.

        Note: dynamic voting does NOT *universally* dominate static
        availability -- hypothesis disproved the stronger claim.  After a
        chain of shrinks, the last registered primary can be small (e.g.
        two processes); if its members then depart permanently, dynamic
        voting is wedged forever while a static majority of survivors may
        still exist.  The E6 dominance claim is about *typical* drift
        (EXPERIMENTS.md); the wedging phenomenon is pinned in
        tests/membership/test_trackers.py.
        """
        from repro.analysis import drifting_population

        v0 = make_view(0, PROCS)
        scenario = drifting_population(
            PROCS, 250, seed=seed, leave_prob=0.03, join_prob=0.02
        )
        static = StaticMajorityTracker(v0)
        dynamic = DynamicVotingTracker(v0)
        for config in scenario:
            static.observe(config)
            dynamic.observe(config)
        assert static.disjoint_primary_incidents() == 0
        assert dynamic.disjoint_primary_incidents() == 0
