"""Property tests driven by the public strategies in repro.checking."""

from hypothesis import HealthCheck, given, settings

from repro.checking import strategies as strat
from repro.core import make_view
from repro.membership import DynamicVotingTracker
from repro.to.summaries import fullorder


class TestStrategiesAreWellFormed:
    @given(strat.views())
    def test_views_nonempty(self, view):
        assert view.set

    @given(strat.increasing_view_pools())
    def test_pools_increasing(self, pool):
        ids = [v.id for v in pool]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    @given(strat.configurations())
    def test_configurations_partition(self, config):
        seen = set()
        for group in config:
            assert group
            assert not (group & seen)
            seen |= group

    @given(strat.gotstates())
    def test_gotstates_feed_fullorder(self, gotstate):
        order = fullorder(gotstate)
        assert len(order) == len(set(order))


class TestTrackerOverArbitraryScenarios:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(strat.scenarios())
    def test_dynamic_voting_safe_on_any_history(self, scenario):
        tracker = DynamicVotingTracker(make_view(0, strat.DEFAULT_PROCS))
        for config in scenario:
            tracker.observe(config)
        assert tracker.disjoint_primary_incidents() == 0

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(strat.scenarios())
    def test_primaries_have_unique_increasing_ids(self, scenario):
        tracker = DynamicVotingTracker(make_view(0, strat.DEFAULT_PROCS))
        seen = []
        for config in scenario:
            for view in tracker.observe(config):
                seen.append(view.id)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)
