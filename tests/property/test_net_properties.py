"""Property tests for the network simulator's delivery guarantees."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import Network, Node

PIDS = ["a", "b", "c"]


class Recorder(Node):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((src, msg))


def build(seed, min_latency, max_latency):
    net = Network(seed=seed, min_latency=min_latency,
                  max_latency=max_latency)
    nodes = {p: net.add_node(Recorder(p)) for p in PIDS}
    net.start()
    return net, nodes


class TestChannelFifo:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        min_latency=st.floats(min_value=0.1, max_value=5.0),
        spread=st.floats(min_value=0.0, max_value=10.0),
        count=st.integers(min_value=1, max_value=12),
    )
    def test_per_channel_fifo(self, seed, min_latency, spread, count):
        net, nodes = build(seed, min_latency, min_latency + spread)
        for i in range(count):
            nodes["a"].send("b", ("m", i))
        net.run_to_quiescence()
        payloads = [m for _, m in nodes["b"].received]
        assert payloads == [("m", i) for i in range(count)]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_interleaved_channels_each_fifo(self, seed):
        net, nodes = build(seed, 0.5, 3.0)
        for i in range(6):
            nodes["a"].send("c", ("from_a", i))
            nodes["b"].send("c", ("from_b", i))
        net.run_to_quiescence()
        from_a = [m for src, m in nodes["c"].received if src == "a"]
        from_b = [m for src, m in nodes["c"].received if src == "b"]
        assert from_a == [("from_a", i) for i in range(6)]
        assert from_b == [("from_b", i) for i in range(6)]


class TestFaultSemantics:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        crash_first=st.booleans(),
    )
    def test_no_delivery_to_or_from_crashed(self, seed, crash_first):
        net, nodes = build(seed, 0.5, 2.0)
        if crash_first:
            net.crash("b")
            nodes["a"].send("b", "x")
            nodes["b"].send("a", "y")
        else:
            nodes["a"].send("b", "x")
            net.crash("b")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert all(src != "b" for src, _ in nodes["a"].received)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_partition_isolates_exactly(self, seed):
        net, nodes = build(seed, 0.5, 2.0)
        net.partition([{"a"}, {"b", "c"}])
        nodes["a"].send("b", "cross")
        nodes["b"].send("c", "within")
        net.run_to_quiescence()
        assert nodes["b"].received == []
        assert ("b", "within") in nodes["c"].received

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_determinism(self, seed):
        results = []
        for _ in range(2):
            net, nodes = build(seed, 0.5, 2.0)
            nodes["a"].send("b", 1)
            nodes["b"].send("c", 2)
            nodes["c"].send("a", 3)
            net.run_to_quiescence()
            results.append(
                tuple(
                    (p, tuple(nodes[p].received)) for p in PIDS
                )
            )
        assert results[0] == results[1]
