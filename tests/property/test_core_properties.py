"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sequences import is_consistent, is_prefix, lub
from repro.core.tables import Table
from repro.core.viewids import ViewId, vid_ge, vid_le, vid_lt, vid_max
from repro.core.views import View
from repro.ioa.state import fingerprint

# -- Strategies ------------------------------------------------------------------

view_ids = st.builds(
    ViewId,
    st.integers(min_value=0, max_value=10),
    st.sampled_from(["", "a", "b", "c"]),
)
maybe_ids = st.one_of(st.none(), view_ids)
members = st.frozensets(
    st.sampled_from(["p1", "p2", "p3", "p4", "p5"]), min_size=1
)
views = st.builds(View, view_ids, members)
short_seqs = st.lists(st.integers(min_value=0, max_value=5), max_size=8)


class TestViewIdTotalOrder:
    @given(maybe_ids, maybe_ids)
    def test_trichotomy(self, a, b):
        assert (vid_lt(a, b) + vid_lt(b, a) + (a == b)) == 1

    @given(maybe_ids, maybe_ids, maybe_ids)
    def test_transitivity(self, a, b, c):
        if vid_lt(a, b) and vid_lt(b, c):
            assert vid_lt(a, c)

    @given(maybe_ids, maybe_ids)
    def test_le_ge_duality(self, a, b):
        assert vid_le(a, b) == vid_ge(b, a)

    @given(st.lists(maybe_ids, min_size=1))
    def test_vid_max_is_upper_bound(self, ids):
        top = vid_max(ids)
        assert all(vid_le(x, top) for x in ids)
        assert top in ids


class TestPrefixLattice:
    @given(short_seqs, short_seqs)
    def test_prefix_antisymmetry(self, a, b):
        if is_prefix(a, b) and is_prefix(b, a):
            assert a == b

    @given(short_seqs, short_seqs, short_seqs)
    def test_prefix_transitivity(self, a, b, c):
        if is_prefix(a, b) and is_prefix(b, c):
            assert is_prefix(a, c)

    @given(short_seqs)
    def test_prefixes_of_one_sequence_are_consistent(self, a):
        prefixes = [a[:i] for i in range(len(a) + 1)]
        assert is_consistent(prefixes)
        assert lub(prefixes) == a

    @given(short_seqs, st.integers(min_value=0, max_value=8))
    def test_lub_of_cut_points(self, a, k):
        k = min(k, len(a))
        assert lub([a[:k], a]) == a


class TestViewAlgebra:
    @given(views, views)
    def test_majority_implies_intersection(self, v, w):
        if v.majority_of(w):
            assert v.intersects(w)

    @given(views, views)
    def test_two_majorities_of_same_view_intersect(self, v, w):
        base = View(ViewId(0), frozenset({"p1", "p2", "p3", "p4", "p5"}))
        if v.majority_of(base) and w.majority_of(base):
            assert (v.set & base.set) & (w.set & base.set)

    @given(views)
    def test_self_majority(self, v):
        assert v.majority_of(v)


class TestFingerprintCanonicality:
    nested = st.recursive(
        st.one_of(st.integers(), st.text(max_size=3), st.none()),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(st.text(max_size=2), children, max_size=3),
        ),
        max_leaves=10,
    )

    @given(nested)
    def test_fingerprint_deterministic(self, value):
        assert fingerprint(value) == fingerprint(value)

    @given(st.dictionaries(st.text(max_size=3), st.integers(), max_size=5))
    def test_dict_insertion_order_irrelevant(self, d):
        reversed_d = dict(reversed(list(d.items())))
        assert fingerprint(d) == fingerprint(reversed_d)

    @given(st.frozensets(st.integers(), max_size=6))
    def test_set_representation_irrelevant(self, s):
        assert fingerprint(set(s)) == fingerprint(s)


class TestTableLaws:
    @given(
        st.dictionaries(
            st.text(max_size=2), st.integers(min_value=0, max_value=3),
            max_size=5,
        )
    )
    def test_storing_defaults_is_invisible(self, entries):
        t1 = Table(lambda: 0)
        t2 = Table(lambda: 0)
        for key, value in entries.items():
            t1[key] = value
            if value != 0:
                t2[key] = value
        assert t1 == t2
        assert hash(t1) == hash(t2)

    @given(st.lists(st.tuples(st.text(max_size=2), st.integers()), max_size=8))
    def test_get_after_set(self, writes):
        t = Table(lambda: None)
        expected = {}
        for key, value in writes:
            t[key] = value
            expected[key] = value
        for key, value in expected.items():
            assert t.get(key) == value
