"""Unit tests for the VS invariant predicates (they must reject bad states)."""

import pytest

from repro.core import make_view
from repro.core.tables import Table
from repro.ioa import State
from repro.ioa.errors import InvariantViolation
from repro.vs.invariants import (
    current_view_is_created,
    invariant_3_1,
    pointers_within_queue,
    safe_behind_delivery,
    vs_invariants,
)


def vs_state(**overrides):
    v0 = make_view(0, {"p1", "p2"})
    state = State(
        created={v0},
        current_viewid={"p1": v0.id, "p2": v0.id},
        queue=Table(list),
        pending=Table(list),
        next=Table(lambda: 1),
        next_safe=Table(lambda: 1),
    )
    for key, value in overrides.items():
        setattr(state, key, value)
    return state, v0


class TestPredicates:
    def test_healthy_state_passes_all(self):
        state, _ = vs_state()
        vs_invariants().check_state(state)

    def test_duplicate_ids_rejected(self):
        state, v0 = vs_state()
        state.created.add(make_view(0, {"p1"}))
        with pytest.raises(AssertionError):
            invariant_3_1(state)

    def test_unknown_current_view_rejected(self):
        state, _ = vs_state(
            current_viewid={"p1": make_view(9, {"p1"}).id, "p2": None}
        )
        with pytest.raises(AssertionError):
            current_view_is_created(state)

    def test_bottom_current_view_ok(self):
        state, v0 = vs_state()
        state.current_viewid = {"p1": v0.id, "p2": None}
        assert current_view_is_created(state)

    def test_pointer_beyond_queue_rejected(self):
        state, v0 = vs_state()
        state.next[("p1", v0.id)] = 5  # queue empty
        with pytest.raises(AssertionError):
            pointers_within_queue(state)

    def test_safe_ahead_of_delivery_rejected(self):
        state, v0 = vs_state()
        state.queue.at(v0.id).extend([("m1", "p1"), ("m2", "p1")])
        state.next[("p1", v0.id)] = 1
        state.next_safe[("p1", v0.id)] = 2
        with pytest.raises(AssertionError):
            safe_behind_delivery(state)

    def test_suite_reports_offender_name(self):
        state, v0 = vs_state()
        state.created.add(make_view(0, {"p2"}))
        with pytest.raises(InvariantViolation) as excinfo:
            vs_invariants().check_state(state)
        assert "unique view ids" in str(excinfo.value)
