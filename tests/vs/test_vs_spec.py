"""Unit and execution tests for the VS specification (Figure 1)."""

import pytest

from repro.core import make_view
from repro.ioa import BoundedExplorer, act, run_random
from repro.ioa.errors import ActionNotEnabled
from repro.checking import (
    build_closed_vs_spec,
    check_vs_trace_properties,
    grid_view_pool,
    random_view_pool,
)
from repro.vs import VSSpec, vs_invariants


@pytest.fixture
def vs(v0):
    pool = [make_view(1, {"p1", "p2"}), make_view(2, {"p2", "p3"})]
    return VSSpec(v0, view_pool=pool)


class TestInitialState:
    def test_initial_view_created(self, vs, v0):
        s = vs.initial_state()
        assert s.created == {v0}

    def test_members_start_in_v0(self, vs, v0):
        s = vs.initial_state()
        assert s.current_viewid["p1"] == v0.id

    def test_non_members_start_bottom(self, v0):
        vs = VSSpec(v0, universe={"p1", "p2", "p3", "p9"})
        assert vs.initial_state().current_viewid["p9"] is None


class TestCreateView:
    def test_requires_increasing_id(self, vs, v0):
        s = vs.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = vs.apply(s, act("vs_createview", v1))
        assert v1 in s.created
        with pytest.raises(ActionNotEnabled):
            vs.apply(s, act("vs_createview", make_view(1, {"p3"})))
        with pytest.raises(ActionNotEnabled):
            vs.apply(s, act("vs_createview", make_view(0, {"p3"})))

    def test_candidates_come_from_pool(self, vs):
        s = vs.initial_state()
        names = [a for a in vs.enabled_controlled(s) if a.name == "vs_createview"]
        assert len(names) == 2


class TestNewView:
    def test_only_members_get_view(self, vs):
        s = vs.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        s = vs.apply(s, act("vs_createview", v1))
        assert vs.is_enabled(s, act("vs_newview", v1, "p1"))
        assert not vs.is_enabled(s, act("vs_newview", v1, "p3"))

    def test_monotone_per_process(self, vs):
        s = vs.initial_state()
        v1 = make_view(1, {"p1", "p2"})
        v2 = make_view(2, {"p2", "p3"})
        s = vs.apply(s, act("vs_createview", v1))
        s = vs.apply(s, act("vs_createview", v2))
        s = vs.apply(s, act("vs_newview", v2, "p2"))
        # p2 skipped v1 and may not go back.
        assert not vs.is_enabled(s, act("vs_newview", v1, "p2"))
        # p1 may still take v1.
        assert vs.is_enabled(s, act("vs_newview", v1, "p1"))


class TestMessageFlow:
    def test_send_order_deliver(self, vs, v0):
        s = vs.initial_state()
        s = vs.apply(s, act("vs_gpsnd", "m1", "p1"))
        assert s.pending.get(("p1", v0.id)) == ["m1"]
        s = vs.apply(s, act("vs_order", "m1", "p1", v0.id))
        assert s.queue.get(v0.id) == [("m1", "p1")]
        s = vs.apply(s, act("vs_gprcv", "m1", "p1", "p2"))
        assert s.next.get(("p2", v0.id)) == 2

    def test_send_with_no_view_is_dropped(self, v0):
        vs = VSSpec(v0, universe={"p1", "p2", "p3", "p9"})
        s = vs.initial_state()
        s = vs.apply(s, act("vs_gpsnd", "m1", "p9"))
        assert not list(s.pending.nondefault_items())

    def test_safe_requires_all_members_delivered(self, vs, v0):
        s = vs.initial_state()
        s = vs.apply(s, act("vs_gpsnd", "m1", "p1"))
        s = vs.apply(s, act("vs_order", "m1", "p1", v0.id))
        assert not vs.is_enabled(s, act("vs_safe", "m1", "p1", "p1"))
        for q in ["p1", "p2", "p3"]:
            s = vs.apply(s, act("vs_gprcv", "m1", "p1", q))
        assert vs.is_enabled(s, act("vs_safe", "m1", "p1", "p1"))
        s = vs.apply(s, act("vs_safe", "m1", "p1", "p1"))
        assert s.next_safe.get(("p1", v0.id)) == 2

    def test_fifo_per_sender(self, vs, v0):
        s = vs.initial_state()
        s = vs.apply(s, act("vs_gpsnd", "m1", "p1"))
        s = vs.apply(s, act("vs_gpsnd", "m2", "p1"))
        assert not vs.is_enabled(s, act("vs_order", "m2", "p1", v0.id))

    def test_delivery_in_queue_order(self, vs, v0):
        s = vs.initial_state()
        for m, p in [("m1", "p1"), ("m2", "p2")]:
            s = vs.apply(s, act("vs_gpsnd", m, p))
            s = vs.apply(s, act("vs_order", m, p, v0.id))
        assert not vs.is_enabled(s, act("vs_gprcv", "m2", "p2", "p3"))
        s = vs.apply(s, act("vs_gprcv", "m1", "p1", "p3"))
        assert vs.is_enabled(s, act("vs_gprcv", "m2", "p2", "p3"))

    def test_no_delivery_after_view_change(self, vs, v0):
        s = vs.initial_state()
        s = vs.apply(s, act("vs_gpsnd", "m1", "p1"))
        s = vs.apply(s, act("vs_order", "m1", "p1", v0.id))
        v1 = make_view(1, {"p1", "p2"})
        s = vs.apply(s, act("vs_createview", v1))
        s = vs.apply(s, act("vs_newview", v1, "p2"))
        assert not vs.is_enabled(s, act("vs_gprcv", "m1", "p1", "p2"))


class TestRandomExecutions:
    @pytest.mark.parametrize("seed", range(6))
    def test_invariants_and_trace_properties(self, v0, three_procs, seed):
        pool = random_view_pool(three_procs, 4, seed=seed)
        system, procs = build_closed_vs_spec(v0, three_procs, view_pool=pool)
        suite = vs_invariants()
        ex = run_random(system, 1200, seed=seed,
                        weights={"vs_createview": 0.1, "vs_newview": 0.6})
        for state in ex.states():
            suite.check_state(state.part("vs"))
        check_vs_trace_properties(ex.trace(), v0)


class TestExhaustive:
    def test_small_config_explored_completely(self):
        v0 = make_view(0, {"p1", "p2"})
        pool = grid_view_pool({"p1", "p2"}, max_epoch=1)
        system, procs = build_closed_vs_spec(
            v0, {"p1", "p2"}, view_pool=pool, budget=1
        )
        suite = vs_invariants()

        def lifted(state):
            suite.check_state(state.part("vs"))
            return True

        from repro.ioa import BoundedExplorer, InvariantSuite

        result = BoundedExplorer(
            system,
            invariants=InvariantSuite({"vs suite": lifted}),
            max_states=200000,
        ).explore()
        assert result.complete
        assert result.violation is None
        assert result.states_visited > 100
