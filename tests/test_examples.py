"""Every example script must run clean end to end."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob(
        "*.py"
    )
)


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(path, capsys):
    module = _load(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "example produced no output"
